//! Crash-tolerant multi-process shard execution: the `msrs dispatch`
//! coordinator and the `msrs worker` child-process loop.
//!
//! The coordinator splits a JSONL corpus into deterministic shards (the
//! same meaningful-line boundaries `msrs batch --shard-size N` uses),
//! fans them out to a fleet of worker child processes over stdin/stdout
//! pipes, and merges the report streams back in shard order — so the
//! merged output is bit-identical to an uninterrupted single-process run
//! modulo the documented `wall_micros`/`cache_hit` exceptions.
//!
//! ## Wire protocol (coordinator ⇄ worker)
//!
//! Coordinator → worker (stdin):
//!
//! ```text
//! #shard <index> <attempt> <lines>     shard assignment header
//! <instance line> × lines              raw corpus lines (never `#`-prefixed)
//! #run                                 solve the shard now
//! #shutdown                            exit cleanly (EOF works too)
//! ```
//!
//! Worker → coordinator (stdout):
//!
//! ```text
//! {…report…}                           one JSONL report per admitted line
//! #hb                                  heartbeat (periodic, from a side thread)
//! #done {…shard stats…}                shard complete; stats for the merge
//! #error {…corpus error…}              decode error after the prefix reports
//! ```
//!
//! A shard's buffered report lines are committed only when its `#done`
//! arrives with a matching report count: torn, garbled, or duplicated
//! output from a dying worker can never reach the merged stream.
//!
//! ## Robustness
//!
//! Per-worker health is monitored with heartbeats plus an optional
//! per-shard wall-clock deadline; a worker that exits, goes silent, or
//! emits garbage is killed and replaced, and its shard is retried with
//! exponential backoff. After [`DispatchConfig::max_attempts`] failures a
//! shard is *quarantined*: the run degrades gracefully, emitting one
//! structured `shard_quarantined` error record in place of the shard's
//! reports and continuing. Completed shards are journaled to an fsync'd
//! append-only checkpoint ([`crate::checkpoint`]) keyed by corpus and
//! configuration fingerprints, so a crashed or interrupted coordinator
//! (SIGTERM included — the journal is crash-consistent by construction)
//! resumes from the last completed shard. A `#shutdown` line on the
//! coordinator's stdin (or [`DispatchConfig::stop_after_shards`]) drains
//! gracefully: in-flight shards finish and are journaled, new ones are
//! not assigned.
//!
//! ## Fault injection (`MSRS_FAULT`)
//!
//! Workers honor a deterministic fault spec from the `MSRS_FAULT`
//! environment variable: `<kind>:shard=<K>[,worker=<W>][,attempts=<N>]`
//! with kinds `crash` (exit before solving), `hang` (suppress heartbeats
//! and sleep), `garble` (emit a non-protocol line and exit), and
//! `partial` (emit half a report line with no newline and exit). The
//! fault fires when solving shard `K` while the attempt number is ≤ `N`
//! (default 1), optionally only in the worker whose spawn ordinal
//! (`MSRS_WORKER_INDEX`, set by the coordinator) is `W` — so tests and CI
//! can script crashes that retries then survive deterministically.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msrs_telemetry::registry;

use crate::checkpoint::{self, CheckpointHeader, CheckpointLog, ShardRecord, ShardStats};
use crate::json::{Json, JsonError};
use crate::jsonl::CorpusError;
use crate::stream::{ServiceCore, StreamStats};
use crate::Engine;

/// Default worker heartbeat period.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(200);
/// Default coordinator silence deadline before a busy worker is declared
/// dead (≫ the heartbeat period).
pub const DEFAULT_HEARTBEAT_TIMEOUT: Duration = Duration::from_millis(3000);

/// `EPIPE`/connection-reset classification shared by the worker and the
/// serve session paths: a peer that went away mid-write is a clean end of
/// conversation, not a crash.
pub(crate) fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Crash,
    Hang,
    Garble,
    Partial,
}

/// Parsed `MSRS_FAULT` spec; see the module docs for the grammar.
#[derive(Debug, Clone, Copy)]
struct FaultSpec {
    kind: FaultKind,
    shard: usize,
    worker: Option<u64>,
    attempts: u32,
}

impl FaultSpec {
    fn parse(spec: &str) -> Option<FaultSpec> {
        let (kind, params) = spec.split_once(':')?;
        let kind = match kind {
            "crash" => FaultKind::Crash,
            "hang" => FaultKind::Hang,
            "garble" => FaultKind::Garble,
            "partial" => FaultKind::Partial,
            _ => return None,
        };
        let mut shard = None;
        let mut worker = None;
        let mut attempts = 1u32;
        for kv in params.split(',') {
            let (k, v) = kv.split_once('=')?;
            match k {
                "shard" => shard = Some(v.parse().ok()?),
                "worker" => worker = Some(v.parse().ok()?),
                "attempts" => attempts = v.parse().ok()?,
                _ => return None,
            }
        }
        Some(FaultSpec {
            kind,
            shard: shard?,
            worker,
            attempts,
        })
    }

    fn from_env() -> Option<FaultSpec> {
        let spec = std::env::var("MSRS_FAULT").ok()?;
        let parsed = FaultSpec::parse(&spec);
        if parsed.is_none() {
            eprintln!("msrs worker: ignoring unparsable MSRS_FAULT `{spec}`");
        }
        parsed
    }

    /// Should the fault fire for this (shard, 1-based attempt) in the
    /// worker with spawn ordinal `worker_index`?
    fn fires(&self, shard: usize, attempt: u32, worker_index: Option<u64>) -> bool {
        self.shard == shard
            && attempt <= self.attempts
            && match self.worker {
                None => true,
                Some(w) => worker_index == Some(w),
            }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Runs the worker half of the dispatch protocol until stdin closes or a
/// `#shutdown` line arrives: reads shard assignments, solves them through
/// a persistent [`ServiceCore`], and emits reports + `#done` stats (or a
/// `#error` record after a decode error's prefix reports).
///
/// A broken pipe on `output` — the coordinator died — ends the worker
/// cleanly (`Ok`), mirroring the serve sessions' disconnect handling.
/// Injected faults (`MSRS_FAULT`) terminate the *process* via
/// [`std::process::exit`]; they exist for the crash-tolerance test suite
/// and CI.
pub fn run_worker<R, W>(engine: &Engine, input: R, output: W, heartbeat: Duration) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let out = Arc::new(Mutex::new(output));
    let stop = Arc::new(AtomicBool::new(false));
    let hb_enabled = Arc::new(AtomicBool::new(true));
    let hb_thread = spawn_heartbeat(
        Arc::clone(&out),
        Arc::clone(&stop),
        Arc::clone(&hb_enabled),
        heartbeat,
    );
    let result = worker_loop(engine, input, &out, &hb_enabled);
    stop.store(true, Ordering::Relaxed);
    let _ = hb_thread.join();
    match result {
        Err(e) if is_disconnect(&e) => Ok(()),
        other => other,
    }
}

fn spawn_heartbeat<W: Write + Send + 'static>(
    out: Arc<Mutex<W>>,
    stop: Arc<AtomicBool>,
    enabled: Arc<AtomicBool>,
    period: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        std::thread::sleep(period);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        if !enabled.load(Ordering::Relaxed) {
            continue;
        }
        let mut w = out.lock().expect("worker output lock");
        // A dead pipe means the coordinator is gone; stop quietly and let
        // the main loop notice on its next write or read.
        if w.write_all(b"#hb\n").and_then(|()| w.flush()).is_err() {
            return;
        }
    })
}

fn worker_loop<R: BufRead, W: Write + Send>(
    engine: &Engine,
    mut input: R,
    out: &Arc<Mutex<W>>,
    hb_enabled: &Arc<AtomicBool>,
) -> io::Result<()> {
    let fault = FaultSpec::from_env();
    let worker_index = std::env::var("MSRS_WORKER_INDEX")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut core = ServiceCore::new();
    let mut buf = String::new();
    let mut lines: Vec<String> = Vec::new();
    loop {
        buf.clear();
        if input.read_line(&mut buf)? == 0 {
            return Ok(()); // coordinator closed our stdin: clean exit
        }
        let header = buf.trim_end();
        if header == "#shutdown" {
            return Ok(());
        }
        let Some((shard, attempt, n)) = parse_shard_header(header) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected coordinator line `{header}`"),
            ));
        };
        lines.clear();
        for _ in 0..n {
            buf.clear();
            if input.read_line(&mut buf)? == 0 {
                return Ok(());
            }
            lines.push(buf.trim_end().to_string());
        }
        buf.clear();
        input.read_line(&mut buf)?;
        if buf.trim_end() != "#run" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shard assignment not terminated by #run",
            ));
        }
        if let Some(f) = fault.filter(|f| f.fires(shard, attempt, worker_index)) {
            inject_fault(f.kind, out, hb_enabled);
        }
        solve_shard(engine, &mut core, shard, &lines, out)?;
    }
}

fn parse_shard_header(line: &str) -> Option<(usize, u32, usize)> {
    let mut it = line.split_whitespace();
    if it.next()? != "#shard" {
        return None;
    }
    let shard = it.next()?.parse().ok()?;
    let attempt = it.next()?.parse().ok()?;
    let n = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((shard, attempt, n))
}

/// Applies an injected fault. All variants terminate the process except
/// `hang`, which parks it (heartbeats off) until the coordinator's health
/// monitor kills it.
fn inject_fault<W: Write + Send>(kind: FaultKind, out: &Arc<Mutex<W>>, hb_enabled: &AtomicBool) {
    match kind {
        FaultKind::Crash => std::process::exit(101),
        FaultKind::Hang => {
            hb_enabled.store(false, Ordering::Relaxed);
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        FaultKind::Garble => {
            let mut w = out.lock().expect("worker output lock");
            let _ = w.write_all(b"!!! injected garbled output !!!\n");
            let _ = w.flush();
            std::process::exit(3);
        }
        FaultKind::Partial => {
            let mut w = out.lock().expect("worker output lock");
            let _ = w.write_all(b"{\"id\":\"torn-report\",\"makespan\":");
            let _ = w.flush();
            std::process::exit(3);
        }
    }
}

fn solve_shard<W: Write + Send>(
    engine: &Engine,
    core: &mut ServiceCore,
    shard: usize,
    lines: &[String],
    out: &Arc<Mutex<W>>,
) -> io::Result<()> {
    let started = Instant::now();
    core.begin(lines.len().max(1));
    let mut error = None;
    for (i, line) in lines.iter().enumerate() {
        // Line numbers are shard-local 1-based ordinals; the coordinator
        // translates them back to physical corpus line numbers.
        if let Err(e) = core.admit_line(engine, i + 1, line, Instant::now()) {
            error = Some(e);
            break;
        }
    }
    core.flush_with(engine, |bytes, _| {
        out.lock().expect("worker output lock").write_all(bytes)
    })?;
    let outcome = core.finish(started, error);
    let tail = match &outcome.error {
        None => {
            let mut obj = vec![("shard".into(), Json::Num(shard as i128))];
            obj.extend(ShardStats::from_stream(&outcome.stats).to_json_fields());
            format!("#done {}", Json::Obj(obj))
        }
        Some(e) => format!("#error {}", corpus_error_json(shard, e)),
    };
    let mut w = out.lock().expect("worker output lock");
    w.write_all(tail.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn corpus_error_json(shard: usize, e: &CorpusError) -> Json {
    let (kind, line, at, reason) = match e {
        CorpusError::Json { line, error } => ("json", *line, error.at, error.reason.clone()),
        CorpusError::Malformed { line, reason } => ("malformed", *line, 0, reason.clone()),
        CorpusError::Io { line, message } => ("io", *line, 0, message.clone()),
    };
    Json::Obj(vec![
        ("shard".into(), Json::Num(shard as i128)),
        ("local_line".into(), Json::Num(line as i128)),
        ("kind".into(), Json::Str(kind.into())),
        ("at".into(), Json::Num(at as i128)),
        ("reason".into(), Json::Str(reason)),
    ])
}

fn corpus_error_from_json(v: &Json, global_line: usize) -> Option<CorpusError> {
    let reason = v.get("reason")?.as_str()?.to_string();
    Some(match v.get("kind")?.as_str()? {
        "json" => CorpusError::Json {
            line: global_line,
            error: JsonError {
                at: v.get("at")?.as_usize()?,
                reason,
            },
        },
        "malformed" => CorpusError::Malformed {
            line: global_line,
            reason,
        },
        _ => CorpusError::Io {
            line: global_line,
            message: reason,
        },
    })
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Configuration of one dispatch run.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Worker argv: program plus arguments (typically the `msrs` binary
    /// with the `worker` subcommand and the engine flags). Must be
    /// non-empty.
    pub worker_cmd: Vec<String>,
    /// Worker processes to keep running.
    pub workers: usize,
    /// Meaningful corpus lines per shard (identical boundaries to
    /// `msrs batch --shard-size`).
    pub shard_size: usize,
    /// Attempts per shard before it is quarantined.
    pub max_attempts: u32,
    /// Base retry backoff; doubles per failed attempt.
    pub retry_backoff: Duration,
    /// Silence deadline for a busy worker (no reports, no heartbeats).
    pub heartbeat_timeout: Duration,
    /// Optional wall-clock deadline per shard attempt.
    pub shard_timeout: Option<Duration>,
    /// Graceful stop after this many shards have been emitted (resume
    /// finishes the run) — deterministic mid-run interruption for tests.
    pub stop_after_shards: Option<usize>,
    /// [`crate::EngineConfig::content_fingerprint`] of the engine
    /// configuration the workers run — the checkpoint's run key.
    pub config_fp: u64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            worker_cmd: Vec::new(),
            workers: 2,
            shard_size: crate::stream::DEFAULT_SHARD_SIZE,
            max_attempts: 3,
            retry_backoff: Duration::from_millis(50),
            heartbeat_timeout: DEFAULT_HEARTBEAT_TIMEOUT,
            shard_timeout: None,
            stop_after_shards: None,
            config_fp: 0,
        }
    }
}

/// A shard the coordinator quarantined after exhausting its retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// 0-based shard index.
    pub shard: usize,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// The last failure observed.
    pub message: String,
}

/// What a dispatch run produced.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// Merged run summary (instances, ratios, phase splits) across
    /// resumed + freshly completed shards.
    pub stats: StreamStats,
    /// Shards emitted to the output (resumed + fresh, incl. quarantined).
    pub shards_total: usize,
    /// Shards skipped because the checkpoint already recorded them.
    pub shards_resumed: usize,
    /// Shard attempts re-queued after worker failures.
    pub retries: u64,
    /// Worker processes spawned (initial fleet + replacements).
    pub workers_spawned: u64,
    /// Shards that exhausted their retry budget, in shard order.
    pub quarantined: Vec<QuarantinedShard>,
    /// True when the run stopped early (graceful drain) with a
    /// resumable checkpoint rather than finishing the corpus.
    pub interrupted: bool,
    /// `Some` when the corpus itself was malformed/unreadable; reports
    /// for every line before the error have been emitted.
    pub error: Option<CorpusError>,
}

/// One shard read from the corpus: trimmed meaningful lines plus their
/// physical 1-based line numbers and the raw-text fingerprint.
struct Shard {
    index: usize,
    lines: Vec<String>,
    line_nos: Vec<usize>,
    fp: u64,
}

/// Incremental corpus reader producing [`Shard`]s; memory stays
/// O(shard_size) — only in-flight shards are resident.
struct ShardSource<R> {
    reader: R,
    line_no: usize,
    next_index: usize,
    done: bool,
}

impl<R: BufRead> ShardSource<R> {
    fn new(reader: R) -> Self {
        ShardSource {
            reader,
            line_no: 0,
            next_index: 0,
            done: false,
        }
    }

    fn next_shard(&mut self, shard_size: usize) -> Result<Option<Shard>, CorpusError> {
        if self.done {
            return Ok(None);
        }
        let mut lines = Vec::new();
        let mut line_nos = Vec::new();
        let mut hash = 0xcbf29ce484222325u64;
        let mut buf = String::new();
        while lines.len() < shard_size {
            buf.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut buf) {
                Ok(0) => {
                    self.done = true;
                    self.line_no -= 1;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Err(CorpusError::Io {
                        line: self.line_no,
                        message: e.to_string(),
                    });
                }
            }
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            hash = fnv1a_64_continue(hash, line.as_bytes());
            hash = fnv1a_64_continue(hash, b"\n");
            lines.push(line.to_string());
            line_nos.push(self.line_no);
        }
        if lines.is_empty() {
            self.done = true;
            return Ok(None);
        }
        let shard = Shard {
            index: self.next_index,
            lines,
            line_nos,
            fp: hash,
        };
        self.next_index += 1;
        Ok(Some(shard))
    }
}

/// Continues an FNV-1a hash across chunks (same constants as
/// [`crate::checkpoint::fnv1a_64`]).
fn fnv1a_64_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Events a worker's stdout reader thread reports to the coordinator.
enum Event {
    /// A complete report line (without its newline).
    Report(String),
    /// `#hb`.
    Heartbeat,
    /// `#done` with parsed stats.
    Done { shard: usize, stats: ShardStats },
    /// `#error` with the parsed corpus-error payload.
    Error(Json),
    /// A line that is not part of the protocol (garbled output, torn
    /// trailing line at EOF).
    Garbage(String),
    /// The worker's stdout closed.
    Eof,
}

struct WorkerHandle {
    ordinal: u64,
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<JoinHandle<()>>,
    busy: bool,
    last_output: Instant,
    shard_started: Instant,
}

/// A shard attempt currently assigned to a worker.
struct Inflight {
    shard: Shard,
    /// Failed attempts before this one.
    failures: u32,
    /// Buffered report bytes — committed only on a matching `#done`.
    reports: Vec<u8>,
    report_count: usize,
}

/// A shard waiting for its retry backoff to elapse.
struct Retry {
    shard: Shard,
    failures: u32,
    not_before: Instant,
}

/// A shard whose output is final, waiting to be emitted in order.
struct Completed {
    bytes: Vec<u8>,
    lines: usize,
    fp: u64,
    attempts: u32,
    stats: ShardStats,
    quarantined: bool,
    /// A decode error terminating the stream at this shard (the bytes
    /// hold the prefix reports before the error).
    error: Option<CorpusError>,
}

struct Coordinator<'a> {
    cfg: &'a DispatchConfig,
    workers: Vec<WorkerHandle>,
    inflight: HashMap<u64, Inflight>,
    retries: Vec<Retry>,
    completed: BTreeMap<usize, Completed>,
    tx: Sender<(u64, Event)>,
    rx: Receiver<(u64, Event)>,
    next_ordinal: u64,
    spawned: u64,
    retry_count: u64,
    quarantined: Vec<QuarantinedShard>,
}

impl<'a> Coordinator<'a> {
    fn new(cfg: &'a DispatchConfig) -> Self {
        let (tx, rx) = mpsc::channel();
        Coordinator {
            cfg,
            workers: Vec::new(),
            inflight: HashMap::new(),
            retries: Vec::new(),
            completed: BTreeMap::new(),
            tx,
            rx,
            next_ordinal: 0,
            spawned: 0,
            retry_count: 0,
            quarantined: Vec::new(),
        }
    }

    fn spawn_worker(&mut self) -> io::Result<()> {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let mut child = Command::new(&self.cfg.worker_cmd[0])
            .args(&self.cfg.worker_cmd[1..])
            .env("MSRS_WORKER_INDEX", ordinal.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("piped child stdout");
        let tx = self.tx.clone();
        let reader = std::thread::spawn(move || read_worker_stdout(ordinal, stdout, &tx));
        registry().dispatch_workers_spawned_total.inc();
        self.spawned += 1;
        self.workers.push(WorkerHandle {
            ordinal,
            child,
            stdin,
            reader: Some(reader),
            busy: false,
            last_output: Instant::now(),
            shard_started: Instant::now(),
        });
        Ok(())
    }

    /// Sends a shard to the idle worker at `pos`. On a pipe failure the
    /// worker is torn down and the shard goes through the normal
    /// failure/retry path.
    fn assign(&mut self, pos: usize, shard: Shard, failures: u32) {
        let w = &mut self.workers[pos];
        let attempt = failures + 1;
        let mut payload =
            String::with_capacity(shard.lines.iter().map(|l| l.len() + 1).sum::<usize>() + 64);
        payload.push_str(&format!(
            "#shard {} {} {}\n",
            shard.index,
            attempt,
            shard.lines.len()
        ));
        for line in &shard.lines {
            payload.push_str(line);
            payload.push('\n');
        }
        payload.push_str("#run\n");
        let ordinal = w.ordinal;
        let sent = match w.stdin.as_mut() {
            Some(stdin) => stdin
                .write_all(payload.as_bytes())
                .and_then(|()| stdin.flush()),
            None => Err(io::Error::new(io::ErrorKind::BrokenPipe, "stdin closed")),
        };
        w.busy = true;
        w.last_output = Instant::now();
        w.shard_started = Instant::now();
        self.inflight.insert(
            ordinal,
            Inflight {
                shard,
                failures,
                reports: Vec::new(),
                report_count: 0,
            },
        );
        if let Err(e) = sent {
            self.fail_worker(ordinal, &format!("failed to send shard: {e}"));
        }
    }

    fn idle_worker(&self) -> Option<usize> {
        self.workers.iter().position(|w| !w.busy)
    }

    /// Kills and removes a worker; if it was busy, its shard is retried
    /// (with backoff) or quarantined.
    fn fail_worker(&mut self, ordinal: u64, reason: &str) {
        let Some(pos) = self.workers.iter().position(|w| w.ordinal == ordinal) else {
            return;
        };
        let mut w = self.workers.remove(pos);
        drop(w.stdin.take());
        let _ = w.child.kill();
        let _ = w.child.wait();
        if let Some(reader) = w.reader.take() {
            let _ = reader.join();
        }
        registry().dispatch_worker_crashes_total.inc();
        if let Some(entry) = self.inflight.remove(&ordinal) {
            let failures = entry.failures + 1;
            if failures >= self.cfg.max_attempts {
                registry().dispatch_quarantines_total.inc();
                self.quarantined.push(QuarantinedShard {
                    shard: entry.shard.index,
                    attempts: failures,
                    message: reason.to_string(),
                });
                let line = Json::Obj(vec![
                    ("error".into(), Json::Str("shard_quarantined".into())),
                    ("shard".into(), Json::Num(entry.shard.index as i128)),
                    ("attempts".into(), Json::Num(failures as i128)),
                    ("lines".into(), Json::Num(entry.shard.lines.len() as i128)),
                    ("message".into(), Json::Str(reason.to_string())),
                ]);
                self.completed.insert(
                    entry.shard.index,
                    Completed {
                        bytes: format!("{line}\n").into_bytes(),
                        lines: entry.shard.lines.len(),
                        fp: entry.shard.fp,
                        attempts: failures,
                        stats: ShardStats::default(),
                        quarantined: true,
                        error: None,
                    },
                );
            } else {
                registry().dispatch_retries_total.inc();
                self.retry_count += 1;
                // Exponential backoff, capped at 2⁶× the base.
                let factor = 1u32 << (failures - 1).min(6);
                self.retries.push(Retry {
                    shard: entry.shard,
                    failures,
                    not_before: Instant::now() + self.cfg.retry_backoff * factor,
                });
            }
        }
    }

    /// The next `recv_timeout` bound: the soonest health deadline or
    /// retry release, capped so shutdown flags are noticed promptly.
    fn next_deadline(&self) -> Duration {
        let mut deadline = Duration::from_millis(100);
        let now = Instant::now();
        for w in self.workers.iter().filter(|w| w.busy) {
            let hb_left = self
                .cfg
                .heartbeat_timeout
                .saturating_sub(now.duration_since(w.last_output));
            deadline = deadline.min(hb_left);
            if let Some(limit) = self.cfg.shard_timeout {
                deadline = deadline.min(limit.saturating_sub(now.duration_since(w.shard_started)));
            }
        }
        for r in &self.retries {
            deadline = deadline.min(r.not_before.saturating_duration_since(now));
        }
        deadline.max(Duration::from_millis(1))
    }

    /// Declares dead any busy worker past its silence or shard deadline.
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let late: Vec<(u64, String)> = self
            .workers
            .iter()
            .filter(|w| w.busy)
            .filter_map(|w| {
                let silent = now.duration_since(w.last_output);
                if silent > self.cfg.heartbeat_timeout {
                    return Some((
                        w.ordinal,
                        format!("no output for {} ms", silent.as_millis()),
                    ));
                }
                if let Some(limit) = self.cfg.shard_timeout {
                    let running = now.duration_since(w.shard_started);
                    if running > limit {
                        return Some((
                            w.ordinal,
                            format!("shard deadline exceeded ({} ms)", running.as_millis()),
                        ));
                    }
                }
                None
            })
            .collect();
        for (ordinal, reason) in late {
            self.fail_worker(ordinal, &reason);
        }
    }

    fn handle_event(&mut self, ordinal: u64, event: Event) {
        let Some(pos) = self.workers.iter().position(|w| w.ordinal == ordinal) else {
            return; // stale reader of a worker we already tore down
        };
        self.workers[pos].last_output = Instant::now();
        match event {
            Event::Heartbeat => {}
            Event::Report(line) => match self.inflight.get_mut(&ordinal) {
                Some(entry) => {
                    entry.reports.extend_from_slice(line.as_bytes());
                    entry.reports.push(b'\n');
                    entry.report_count += 1;
                }
                None => self.fail_worker(ordinal, "report line from an idle worker"),
            },
            Event::Done { shard, stats } => {
                let Some(entry) = self.inflight.get(&ordinal) else {
                    self.fail_worker(ordinal, "#done from an idle worker");
                    return;
                };
                if entry.shard.index != shard || entry.report_count as u64 != stats.instances {
                    let reason = format!(
                        "shard report mismatch (#done shard {shard} × assigned {}, {} report(s) × {} instance(s))",
                        entry.shard.index, entry.report_count, stats.instances
                    );
                    self.fail_worker(ordinal, &reason);
                    return;
                }
                let entry = self.inflight.remove(&ordinal).expect("checked above");
                self.workers[pos].busy = false;
                self.completed.insert(
                    entry.shard.index,
                    Completed {
                        bytes: entry.reports,
                        lines: entry.shard.lines.len(),
                        fp: entry.shard.fp,
                        attempts: entry.failures + 1,
                        stats,
                        quarantined: false,
                        error: None,
                    },
                );
            }
            Event::Error(payload) => {
                let Some(entry) = self.inflight.remove(&ordinal) else {
                    self.fail_worker(ordinal, "#error from an idle worker");
                    return;
                };
                self.workers[pos].busy = false;
                let local = payload
                    .get("local_line")
                    .and_then(Json::as_usize)
                    .unwrap_or(1);
                let global = entry
                    .shard
                    .line_nos
                    .get(local.saturating_sub(1))
                    .copied()
                    .unwrap_or_else(|| entry.shard.line_nos.last().copied().unwrap_or(0));
                let error = corpus_error_from_json(&payload, global).unwrap_or(CorpusError::Io {
                    line: global,
                    message: "worker reported an unparsable corpus error".into(),
                });
                self.completed.insert(
                    entry.shard.index,
                    Completed {
                        bytes: entry.reports,
                        lines: entry.shard.lines.len(),
                        fp: entry.shard.fp,
                        attempts: entry.failures + 1,
                        stats: ShardStats::default(),
                        quarantined: false,
                        error: Some(error),
                    },
                );
            }
            Event::Garbage(line) => {
                let reason = format!("garbled worker output: `{}`", truncate(&line, 120));
                self.fail_worker(ordinal, &reason);
            }
            Event::Eof => {
                self.fail_worker(ordinal, "worker exited mid-run");
            }
        }
    }

    /// Tears the fleet down: close stdins (workers exit on EOF), then
    /// kill anything still alive and reap it.
    fn shutdown_fleet(&mut self) {
        for w in &mut self.workers {
            drop(w.stdin.take());
        }
        for mut w in self.workers.drain(..) {
            let _ = w.child.kill();
            let _ = w.child.wait();
            if let Some(reader) = w.reader.take() {
                let _ = reader.join();
            }
        }
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// Parses one worker stdout stream into [`Event`]s. A final line without
/// its newline (a worker dying mid-write) is garbage, never a report.
fn read_worker_stdout(ordinal: u64, stdout: std::process::ChildStdout, tx: &Sender<(u64, Event)>) {
    let mut reader = BufReader::new(stdout);
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let terminated = buf.ends_with('\n');
        let line = buf.trim_end_matches(['\n', '\r']);
        let event = if !terminated {
            Event::Garbage(line.to_string())
        } else if line == "#hb" {
            Event::Heartbeat
        } else if let Some(payload) = line.strip_prefix("#done ") {
            match Json::parse(payload).ok().as_ref().and_then(parse_done) {
                Some((shard, stats)) => Event::Done { shard, stats },
                None => Event::Garbage(line.to_string()),
            }
        } else if let Some(payload) = line.strip_prefix("#error ") {
            match Json::parse(payload) {
                Ok(v) => Event::Error(v),
                Err(_) => Event::Garbage(line.to_string()),
            }
        } else if line.starts_with('{') {
            Event::Report(line.to_string())
        } else {
            Event::Garbage(line.to_string())
        };
        if tx.send((ordinal, event)).is_err() {
            return; // coordinator gone
        }
    }
    let _ = tx.send((ordinal, Event::Eof));
}

fn parse_done(v: &Json) -> Option<(usize, ShardStats)> {
    Some((v.get("shard")?.as_usize()?, ShardStats::from_json(v)?))
}

/// The dispatch coordinator: shards `input`, fans the shards out to
/// worker child processes, and merges their reports in shard order into
/// the file at `out_path`. With `checkpoint_path`, completed shards are
/// journaled durably and an existing journal resumes the run (validating
/// that the corpus and configuration are unchanged). `shutdown` — when
/// set by the caller, e.g. from a `#shutdown` stdin line — triggers a
/// graceful drain.
///
/// Returns `Err` only for coordinator-level I/O and setup failures;
/// corpus decode errors travel in [`DispatchOutcome::error`] exactly as
/// in [`crate::stream::JsonlServer::serve`], after the reports preceding
/// the error were written.
pub fn dispatch<R: BufRead>(
    input: R,
    out_path: &Path,
    checkpoint_path: Option<&Path>,
    cfg: &DispatchConfig,
    shutdown: Option<&AtomicBool>,
) -> io::Result<DispatchOutcome> {
    if cfg.worker_cmd.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "dispatch needs a non-empty worker command",
        ));
    }
    if cfg.workers == 0 || cfg.shard_size == 0 || cfg.max_attempts == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "dispatch needs workers ≥ 1, shard_size ≥ 1, max_attempts ≥ 1",
        ));
    }
    let started = Instant::now();
    let mut source = ShardSource::new(input);
    let mut merged = StreamStats {
        shard_size: cfg.shard_size,
        ..StreamStats::default()
    };
    let mut coord = Coordinator::new(cfg);
    let mut next_emit = 0usize;
    let mut emitted_bytes = 0u64;
    let mut shards_resumed = 0usize;
    let mut outcome_error: Option<CorpusError> = None;
    let mut source_done = false;

    // --- resume / journal setup -------------------------------------------
    let header = CheckpointHeader {
        config_fp: cfg.config_fp,
        shard_size: cfg.shard_size,
    };
    let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
    let mut ckpt_log = None;
    if let Some(path) = checkpoint_path {
        match checkpoint::load(path)? {
            None => {
                ckpt_log = Some(CheckpointLog::create(path, header)?);
            }
            Some(loaded) => {
                if loaded.header != header {
                    return Err(invalid(format!(
                        "{}: checkpoint belongs to a different run \
                         (config_fp {:#x}/shard_size {} recorded, {:#x}/{} requested)",
                        path.display(),
                        loaded.header.config_fp,
                        loaded.header.shard_size,
                        header.config_fp,
                        header.shard_size,
                    )));
                }
                for rec in &loaded.records {
                    let shard = source
                        .next_shard(cfg.shard_size)
                        .map_err(|e| invalid(format!("re-reading corpus for resume: {e}")))?
                        .ok_or_else(|| {
                            invalid(format!(
                                "{}: checkpoint records shard {} but the corpus ended",
                                path.display(),
                                rec.shard
                            ))
                        })?;
                    if shard.fp != rec.shard_fp || shard.lines.len() != rec.lines {
                        return Err(invalid(format!(
                            "{}: corpus changed since the checkpoint (shard {} fingerprint mismatch)",
                            path.display(),
                            rec.shard
                        )));
                    }
                    rec.stats.merge_into(&mut merged);
                    if rec.quarantined {
                        coord.quarantined.push(QuarantinedShard {
                            shard: rec.shard,
                            attempts: rec.attempts,
                            message: "quarantined in a previous run".into(),
                        });
                    } else {
                        merged.shards += 1;
                    }
                    registry().dispatch_shards_resumed_total.inc();
                }
                shards_resumed = loaded.records.len();
                next_emit = shards_resumed;
                emitted_bytes = loaded.out_bytes();
                ckpt_log = Some(CheckpointLog::open_append(path)?);
            }
        }
    }

    // --- output file ------------------------------------------------------
    let out_file = if emitted_bytes > 0 {
        let mut f = OpenOptions::new().read(true).write(true).open(out_path)?;
        let len = f.metadata()?.len();
        if len < emitted_bytes {
            return Err(invalid(format!(
                "{}: output file is shorter ({len} bytes) than the checkpoint \
                 records ({emitted_bytes} bytes)",
                out_path.display()
            )));
        }
        // Reports of shards past the last durable record are discarded.
        f.set_len(emitted_bytes)?;
        f.seek(SeekFrom::End(0))?;
        f
    } else {
        File::create(out_path)?
    };
    let mut out = BufWriter::new(out_file);

    // --- main loop --------------------------------------------------------
    let mut interrupted = false;
    if let Some(stop) = cfg.stop_after_shards {
        if next_emit >= stop {
            interrupted = true;
        }
    }
    let mut error_shard: Option<usize> = None;
    'run: loop {
        if !interrupted && shutdown.is_some_and(|s| s.load(Ordering::Relaxed)) {
            interrupted = true;
        }
        // Assign work while there is work and worker capacity.
        while !interrupted && error_shard.is_none() {
            let now = Instant::now();
            let retry_pos = coord.retries.iter().position(|r| r.not_before <= now);
            let have_source = !source_done;
            if retry_pos.is_none() && !have_source {
                break;
            }
            // Find or grow an idle worker first — a shard is only taken
            // from the source once somewhere to run it exists.
            let pos = match coord.idle_worker() {
                Some(pos) => pos,
                None if coord.workers.len() < cfg.workers => {
                    coord.spawn_worker()?;
                    coord.workers.len() - 1
                }
                None => break,
            };
            if let Some(rpos) = retry_pos {
                let retry = coord.retries.remove(rpos);
                coord.assign(pos, retry.shard, retry.failures);
                continue;
            }
            match source.next_shard(cfg.shard_size) {
                Ok(Some(shard)) => coord.assign(pos, shard, 0),
                Ok(None) => source_done = true,
                Err(e) => {
                    // The corpus itself is unreadable: the stream ends at
                    // the shard this read would have produced.
                    error_shard = Some(source.next_index);
                    outcome_error = Some(e);
                    source_done = true;
                }
            }
        }

        // Emit the contiguous completed prefix.
        while let Some(done) = coord.completed.remove(&next_emit) {
            out.write_all(&done.bytes)?;
            emitted_bytes += done.bytes.len() as u64;
            registry().dispatch_shards_total.inc();
            if let Some(err) = done.error {
                // Decode error: the prefix reports are written, nothing
                // after this shard may be emitted, and the shard is *not*
                // journaled (a resume retries it and fails the same way).
                outcome_error = Some(err);
                break 'run;
            }
            if !done.quarantined {
                done.stats.merge_into(&mut merged);
                merged.shards += 1;
            }
            if let Some(log) = ckpt_log.as_mut() {
                // Durability order: report bytes first, then the record
                // that vouches for them.
                out.flush()?;
                out.get_ref().sync_data()?;
                log.append(&ShardRecord {
                    shard: next_emit,
                    lines: done.lines,
                    shard_fp: done.fp,
                    out_bytes: emitted_bytes,
                    attempts: done.attempts,
                    quarantined: done.quarantined,
                    stats: done.stats,
                })?;
            }
            next_emit += 1;
            if cfg.stop_after_shards.is_some_and(|stop| next_emit >= stop) {
                interrupted = true;
            }
        }

        // Termination: nothing running, nothing queued, nothing to come.
        let busy = coord.workers.iter().any(|w| w.busy);
        let retry_pending = !coord.retries.is_empty();
        if error_shard.is_some_and(|e| next_emit >= e) {
            break;
        }
        if interrupted && !busy {
            break;
        }
        if !busy && !retry_pending && source_done && coord.completed.is_empty() {
            break;
        }
        if error_shard.is_some() && !busy && !retry_pending {
            // Everything before the error shard that can complete has;
            // the error shard itself was emitted above if it exists.
            break;
        }

        // Wait for the next event or deadline.
        match coord.rx.recv_timeout(coord.next_deadline()) {
            Ok((ordinal, event)) => {
                coord.handle_event(ordinal, event);
                // Drain whatever else is already queued before looping.
                while let Ok((ordinal, event)) = coord.rx.try_recv() {
                    coord.handle_event(ordinal, event);
                }
            }
            Err(RecvTimeoutError::Timeout) => coord.enforce_deadlines(),
            Err(RecvTimeoutError::Disconnected) => unreachable!("coordinator holds a sender"),
        }
    }

    out.flush()?;
    coord.shutdown_fleet();
    coord.quarantined.sort_by_key(|q| q.shard);
    merged.wall_micros = started.elapsed().as_micros() as u64;
    Ok(DispatchOutcome {
        stats: merged,
        shards_total: next_emit,
        shards_resumed,
        retries: coord.retry_count,
        workers_spawned: coord.spawned,
        quarantined: coord.quarantined,
        interrupted,
        error: outcome_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_grammar() {
        let f = FaultSpec::parse("crash:shard=3").unwrap();
        assert_eq!(f.kind, FaultKind::Crash);
        assert!(f.fires(3, 1, None));
        assert!(!f.fires(3, 2, None)); // default attempts=1: retry succeeds
        assert!(!f.fires(2, 1, None));

        let f = FaultSpec::parse("hang:shard=0,worker=2,attempts=4").unwrap();
        assert_eq!(f.kind, FaultKind::Hang);
        assert!(f.fires(0, 4, Some(2)));
        assert!(!f.fires(0, 5, Some(2)));
        assert!(!f.fires(0, 1, Some(1)));
        assert!(!f.fires(0, 1, None));

        assert!(FaultSpec::parse("garble:shard=1").is_some());
        assert!(FaultSpec::parse("partial:shard=1").is_some());
        assert!(FaultSpec::parse("explode:shard=1").is_none());
        assert!(FaultSpec::parse("crash").is_none());
        assert!(FaultSpec::parse("crash:worker=1").is_none()); // shard required
        assert!(FaultSpec::parse("crash:shard=x").is_none());
    }

    #[test]
    fn shard_header_round_trip() {
        assert_eq!(parse_shard_header("#shard 7 2 128"), Some((7, 2, 128)));
        assert_eq!(parse_shard_header("#shard 7 2"), None);
        assert_eq!(parse_shard_header("#shard 7 2 128 9"), None);
        assert_eq!(parse_shard_header("#run"), None);
    }

    #[test]
    fn shard_source_boundaries_match_batch_semantics() {
        let corpus = "# comment\n\
                      {\"machines\":1}\n\
                      \n\
                      {\"machines\":2}\n\
                      {\"machines\":3}\n";
        let mut src = ShardSource::new(corpus.as_bytes());
        let s0 = src.next_shard(2).unwrap().unwrap();
        assert_eq!(s0.index, 0);
        assert_eq!(s0.lines, vec!["{\"machines\":1}", "{\"machines\":2}"]);
        assert_eq!(s0.line_nos, vec![2, 4]);
        let s1 = src.next_shard(2).unwrap().unwrap();
        assert_eq!(s1.index, 1);
        assert_eq!(s1.line_nos, vec![5]);
        assert!(src.next_shard(2).unwrap().is_none());
        // Fingerprints depend only on the meaningful line text.
        let mut src2 = ShardSource::new("{\"machines\":1}\n# x\n{\"machines\":2}\n".as_bytes());
        let t0 = src2.next_shard(2).unwrap().unwrap();
        assert_eq!(t0.fp, s0.fp);
    }

    #[test]
    fn corpus_error_payload_round_trips() {
        let cases = [
            CorpusError::Json {
                line: 9,
                error: JsonError {
                    at: 4,
                    reason: "expected digit".into(),
                },
            },
            CorpusError::Malformed {
                line: 9,
                reason: "machines must be ≥ 1".into(),
            },
            CorpusError::Io {
                line: 9,
                message: "pipe broke".into(),
            },
        ];
        for e in cases {
            let json = corpus_error_json(3, &e);
            let back = corpus_error_from_json(&json, 9).unwrap();
            assert_eq!(format!("{back}"), format!("{e}"));
        }
    }
}
