//! Crash-tolerant multi-process shard execution: the `msrs dispatch`
//! coordinator and the `msrs worker` loop, over pipes or TCP.
//!
//! The coordinator splits a JSONL corpus into deterministic shards (the
//! same meaningful-line boundaries `msrs batch --shard-size N` uses),
//! fans them out to a fleet of workers — local child processes over
//! stdin/stdout pipes and/or remote `msrs worker --connect` processes
//! over TCP ([`crate::remote`]) — and merges the report streams back in
//! shard order, so the merged output is bit-identical to an
//! uninterrupted single-process run modulo the documented
//! `wall_micros`/`cache_hit` exceptions.
//!
//! ## Wire protocol (coordinator ⇄ worker)
//!
//! Coordinator → worker:
//!
//! ```text
//! #shard <index> <attempt> <lines> [cache]   shard assignment header
//! <instance line> × lines              raw corpus lines (never `#`-prefixed)
//! #run                                 solve the shard now
//! #cachehit <fp> <payload>             cache-probe reply: stored report
//! #cachemiss <fp>                      cache-probe reply: not cached
//! #shutdown                            exit cleanly (EOF works too)
//! ```
//!
//! Worker → coordinator:
//!
//! ```text
//! {…report…}                           one JSONL report per admitted line
//! #hb                                  heartbeat (periodic, from a side thread)
//! #cacheq <fp>                         probe the coordinator's result cache
//! #cachefill <fp> <payload>            share a freshly solved canonical report
//! #done {"shard":…,"attempt":…,…}      shard complete; stats for the merge
//! #error {"shard":…,"attempt":…,…}     decode error after the prefix reports
//! ```
//!
//! The protocol is transport-agnostic: remote workers speak exactly
//! these lines after a versioned `#hello`/`#welcome` handshake
//! ([`crate::remote`]).
//!
//! ## Leases and stale attempts
//!
//! Every shard assignment is a *lease* identified by a monotonically
//! increasing per-shard attempt id: at most one attempt owns a shard's
//! commit slot at a time, and a lapsed lease — worker disconnect,
//! heartbeat silence, or shard deadline — returns the shard to the queue
//! and bumps the attempt counter. A zombie worker (a remote worker whose
//! lease was revoked but whose socket is still alive) may later deliver
//! a `#done` for the stale attempt; the coordinator discards it (counted
//! as a stale-attempt drop) and never commits it, so a shard's reports
//! reach the merged stream exactly once. A shard's buffered report lines
//! are committed only when its `#done` arrives with the matching shard
//! index, attempt id, and report count: torn, garbled, duplicated, or
//! stale output from a dying worker can never reach the merged stream.
//!
//! ## Straggler hedging
//!
//! With [`DispatchConfig::hedge_multiplier`] > 0, a shard whose attempt
//! has run longer than `max(multiplier × trailing-median shard time,
//! hedge_min)` while an idle worker exists is *hedged*: a speculative
//! duplicate attempt is launched on the idle worker and whichever
//! verified `#done` lands first commits; the loser is discarded as a
//! stale attempt (counted hedge-wasted). Safe because reports are
//! deterministic modulo `wall_micros`/`cache_hit`. Hedging is off by
//! default (`hedge_multiplier = 0`).
//!
//! ## Robustness
//!
//! Per-worker health is monitored with heartbeats plus an optional
//! per-shard wall-clock deadline; a child worker that exits, goes
//! silent, or emits garbage is killed and replaced, a remote worker is
//! disconnected or lease-revoked, and the shard is retried with
//! exponential backoff. After [`DispatchConfig::max_attempts`] failures a
//! shard is *quarantined*: the run degrades gracefully, emitting one
//! structured `shard_quarantined` error record (naming the last failing
//! worker ordinal) in place of the shard's reports and continuing.
//! Completed shards are journaled to an fsync'd append-only checkpoint
//! ([`crate::checkpoint`]) keyed by corpus and configuration
//! fingerprints, so a crashed or interrupted coordinator resumes from
//! the last completed shard — unchanged across transports. A `#shutdown`
//! line on the coordinator's stdin (or
//! [`DispatchConfig::stop_after_shards`]) drains gracefully.
//!
//! ## Fault injection (`MSRS_FAULT`)
//!
//! Workers honor a deterministic fault spec from the `MSRS_FAULT`
//! environment variable:
//! `<kind>:shard=<K>[,worker=<W>][,attempts=<N>][,ms=<T>]` with kinds
//! `crash` (exit before solving), `hang` (suppress heartbeats and
//! sleep), `garble` (emit a non-protocol line and exit), `partial` (emit
//! half a report line with no newline and exit), `disconnect` (drop the
//! transport mid-assignment; a remote worker redials), `stall` (go
//! silent for `ms` milliseconds, then finish the shard — producing a
//! zombie whose late `#done` is a stale drop), `dup-done` (emit the
//! `#done` line twice), and `slow` (sleep `ms` with heartbeats still
//! flowing — a straggler for hedge tests). The fault fires when solving
//! shard `K` while the attempt number is ≤ `N` (default 1), optionally
//! only in the worker whose ordinal (`MSRS_WORKER_INDEX`, set by the
//! coordinator) is `W`; `ms` defaults to 1000.
//!
//! Three kinds target the durable cache plane instead:
//! `cache-torn:at=N` truncates the cache store to `N` bytes before it is
//! loaded (simulated torn tail), `cache-flip:record=K` flips one bit in
//! its `K`-th record line (corruption-quarantine probe) — both fire at
//! [`crate::cachestore::CacheStore::open`] and need no `shard=` — and
//! `cache-stale-fill:shard=K[,ms=T]` makes the worker solving shard `K`
//! go dark for `ms` after solving and send its `#cachefill` entries (and
//! `#done`) only once its lease has lapsed, so the coordinator must drop
//! them as stale.
//!
//! ## Fleet-shared cache plane
//!
//! When the coordinator is started with a cache store
//! ([`DispatchConfig::cache_path`]), it becomes the fleet's cache
//! authority and advertises it with a trailing `cache` token on each
//! `#shard` header. A worker whose serve cache is active then decodes
//! the shard *before* solving, sends one `#cacheq <fp>` probe per
//! distinct locally-unknown canonical fingerprint, and reads exactly one
//! `#cachehit <fp> <payload>` / `#cachemiss <fp>` reply per probe —
//! installing hits into its local cache so they serve from the fast path
//! bit-identically to local hits. After solving, the worker sends a
//! `#cachefill <fp> <payload>` for every probed miss it now holds
//! (before `#done`, while its lease is live); the coordinator verifies,
//! re-serializes, and persists each fill, and drops fills from zombie or
//! idle workers (counted as `msrs_dispatch_stale_fills_dropped_total`).
//! Payloads are [`crate::report::SolveReport::to_store_json`] lines. The
//! exchange is versioned through the remote handshake
//! ([`crate::remote::REMOTE_PROTO_VERSION`]), so pre-cache workers are
//! rejected before they can mis-parse it.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msrs_telemetry::registry;

use crate::cachestore::CacheStore;
use crate::checkpoint::{self, CheckpointHeader, CheckpointLog, ShardRecord, ShardStats};
use crate::json::{Json, JsonError};
use crate::jsonl::CorpusError;
use crate::remote::{RemoteHub, REMOTE_PROTO_VERSION};
use crate::report::SolveReport;
use crate::stream::{ServiceCore, StreamStats};
use crate::Engine;

/// Default worker heartbeat period.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(200);
/// Default coordinator silence deadline before a busy worker is declared
/// dead (≫ the heartbeat period).
pub const DEFAULT_HEARTBEAT_TIMEOUT: Duration = Duration::from_millis(3000);

/// Committed attempt durations kept for the hedging median.
const MEDIAN_WINDOW: usize = 64;
/// Committed attempts required before hedging can trigger.
const HEDGE_MIN_SAMPLES: usize = 3;

/// `EPIPE`/connection-reset classification shared by the worker, remote,
/// and serve session paths: a peer that went away mid-write is a clean
/// end of conversation, not a crash.
pub(crate) fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultKind {
    Crash,
    Hang,
    Garble,
    Partial,
    Disconnect,
    Stall,
    DupDone,
    Slow,
    /// Truncate the cache store to `at` bytes before loading it.
    CacheTorn,
    /// Flip one bit in the cache store's `record`-th record line before
    /// loading it.
    CacheFlip,
    /// Go dark (heartbeats off) for `ms` after solving, then send the
    /// `#cachefill` entries and `#done` — by then the lease has lapsed
    /// and the fills must be dropped as stale.
    CacheStaleFill,
}

/// A cache-store mutation derived from a [`FaultSpec`]; applied by
/// [`crate::cachestore`] when opening a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CacheFault {
    /// Truncate the file to `at` bytes (a simulated torn tail).
    Torn {
        /// Byte length to keep.
        at: u64,
    },
    /// Flip one bit in the `record`-th record line.
    Flip {
        /// 0-based record ordinal.
        record: u64,
    },
}

/// Parsed `MSRS_FAULT` spec; see the module docs for the grammar.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultSpec {
    pub(crate) kind: FaultKind,
    /// Target shard; irrelevant (and optional) for the store-mutation
    /// kinds `cache-torn`/`cache-flip`, which fire at store open.
    shard: Option<usize>,
    worker: Option<u64>,
    attempts: u32,
    /// Duration parameter for `stall`/`slow`/`cache-stale-fill`, in
    /// milliseconds.
    pub(crate) ms: u64,
    /// Byte offset parameter for `cache-torn`.
    at: u64,
    /// Record ordinal parameter for `cache-flip`.
    record: u64,
}

impl FaultSpec {
    pub(crate) fn parse(spec: &str) -> Option<FaultSpec> {
        let (kind, params) = spec.split_once(':')?;
        let kind = match kind {
            "crash" => FaultKind::Crash,
            "hang" => FaultKind::Hang,
            "garble" => FaultKind::Garble,
            "partial" => FaultKind::Partial,
            "disconnect" => FaultKind::Disconnect,
            "stall" => FaultKind::Stall,
            "dup-done" => FaultKind::DupDone,
            "slow" => FaultKind::Slow,
            "cache-torn" => FaultKind::CacheTorn,
            "cache-flip" => FaultKind::CacheFlip,
            "cache-stale-fill" => FaultKind::CacheStaleFill,
            _ => return None,
        };
        let mut shard = None;
        let mut worker = None;
        let mut attempts = 1u32;
        let mut ms = 1000u64;
        let mut at = 0u64;
        let mut record = 0u64;
        for kv in params.split(',') {
            let (k, v) = kv.split_once('=')?;
            match k {
                "shard" => shard = Some(v.parse().ok()?),
                "worker" => worker = Some(v.parse().ok()?),
                "attempts" => attempts = v.parse().ok()?,
                "ms" => ms = v.parse().ok()?,
                "at" => at = v.parse().ok()?,
                "record" => record = v.parse().ok()?,
                _ => return None,
            }
        }
        if shard.is_none() && !matches!(kind, FaultKind::CacheTorn | FaultKind::CacheFlip) {
            return None; // every worker-side fault targets a shard
        }
        Some(FaultSpec {
            kind,
            shard,
            worker,
            attempts,
            ms,
            at,
            record,
        })
    }

    pub(crate) fn from_env() -> Option<FaultSpec> {
        let spec = std::env::var("MSRS_FAULT").ok()?;
        let parsed = FaultSpec::parse(&spec);
        if parsed.is_none() {
            eprintln!("msrs: ignoring unparsable MSRS_FAULT `{spec}`");
        }
        parsed
    }

    /// The cache-store mutation this spec asks for, if any.
    pub(crate) fn cache_fault(&self) -> Option<CacheFault> {
        match self.kind {
            FaultKind::CacheTorn => Some(CacheFault::Torn { at: self.at }),
            FaultKind::CacheFlip => Some(CacheFault::Flip {
                record: self.record,
            }),
            _ => None,
        }
    }

    /// Should the fault fire for this (shard, 1-based attempt) in the
    /// worker with ordinal `worker_index`?
    fn fires(&self, shard: usize, attempt: u32, worker_index: Option<u64>) -> bool {
        self.shard == Some(shard)
            && attempt <= self.attempts
            && match self.worker {
                None => true,
                Some(w) => worker_index == Some(w),
            }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Why a worker conversation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// The coordinator sent `#shutdown`: the run is over, do not redial.
    Shutdown,
    /// The transport closed (EOF / reset): a remote worker may redial —
    /// the coordinator may just have restarted.
    Eof,
}

/// Runs the worker half of the dispatch protocol until the transport
/// closes or a `#shutdown` line arrives: reads shard assignments, solves
/// them through a persistent [`ServiceCore`], and emits reports + `#done`
/// stats (or a `#error` record after a decode error's prefix reports).
///
/// A broken pipe on `output` — the coordinator died — ends the worker
/// cleanly (`Ok`), mirroring the serve sessions' disconnect handling.
/// Injected faults (`MSRS_FAULT`) mostly terminate the *process* via
/// [`std::process::exit`]; they exist for the crash-tolerance test suite
/// and CI.
pub fn run_worker<R, W>(
    engine: &Engine,
    input: R,
    output: W,
    heartbeat: Duration,
    decode_threads: usize,
) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let worker_index = std::env::var("MSRS_WORKER_INDEX")
        .ok()
        .and_then(|v| v.parse().ok());
    run_worker_conn(
        engine,
        input,
        output,
        heartbeat,
        worker_index,
        decode_threads,
    )
    .map(|_| ())
}

/// Transport-generic worker conversation: one connected session over any
/// `(BufRead, Write)` pair (a stdin/stdout pipe or a TCP stream). Reports
/// how the session ended so [`crate::remote::run_remote_worker`] can
/// decide whether to redial.
pub(crate) fn run_worker_conn<R, W>(
    engine: &Engine,
    input: R,
    output: W,
    heartbeat: Duration,
    worker_index: Option<u64>,
    decode_threads: usize,
) -> io::Result<WorkerExit>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let out = Arc::new(Mutex::new(output));
    let stop = Arc::new(AtomicBool::new(false));
    let hb_enabled = Arc::new(AtomicBool::new(true));
    let hb_thread = spawn_heartbeat(
        Arc::clone(&out),
        Arc::clone(&stop),
        Arc::clone(&hb_enabled),
        heartbeat,
    );
    let result = worker_loop(
        engine,
        input,
        &out,
        &hb_enabled,
        worker_index,
        decode_threads,
    );
    stop.store(true, Ordering::Relaxed);
    let _ = hb_thread.join();
    match result {
        Err(e) if is_disconnect(&e) => Ok(WorkerExit::Eof),
        other => other,
    }
}

fn spawn_heartbeat<W: Write + Send + 'static>(
    out: Arc<Mutex<W>>,
    stop: Arc<AtomicBool>,
    enabled: Arc<AtomicBool>,
    period: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        std::thread::sleep(period);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        if !enabled.load(Ordering::Relaxed) {
            continue;
        }
        let mut w = out.lock().expect("worker output lock");
        // A dead pipe means the coordinator is gone; stop quietly and let
        // the main loop notice on its next write or read.
        if w.write_all(b"#hb\n").and_then(|()| w.flush()).is_err() {
            return;
        }
    })
}

fn worker_loop<R: BufRead, W: Write + Send>(
    engine: &Engine,
    mut input: R,
    out: &Arc<Mutex<W>>,
    hb_enabled: &Arc<AtomicBool>,
    worker_index: Option<u64>,
    decode_threads: usize,
) -> io::Result<WorkerExit> {
    let fault = FaultSpec::from_env();
    let mut core = ServiceCore::new();
    let mut buf = String::new();
    let mut lines: Vec<String> = Vec::new();
    // Built lazily: only shards that use the burst-decode path (the
    // fleet cache exchange, or `--decode-threads` > 1) need a pool.
    let mut pool: Option<rayon::ThreadPool> = None;
    loop {
        buf.clear();
        if input.read_line(&mut buf)? == 0 {
            return Ok(WorkerExit::Eof); // coordinator closed the transport
        }
        let header = buf.trim_end();
        if header == "#shutdown" {
            return Ok(WorkerExit::Shutdown);
        }
        let Some((shard, attempt, n, cache_plane)) = parse_shard_header(header) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected coordinator line `{header}`"),
            ));
        };
        lines.clear();
        for _ in 0..n {
            buf.clear();
            if input.read_line(&mut buf)? == 0 {
                return Ok(WorkerExit::Eof);
            }
            lines.push(buf.trim_end().to_string());
        }
        buf.clear();
        input.read_line(&mut buf)?;
        if buf.trim_end() != "#run" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shard assignment not terminated by #run",
            ));
        }
        let mut dup_done = false;
        let mut stale_fill_ms = None;
        if let Some(f) = fault.filter(|f| f.fires(shard, attempt, worker_index)) {
            match f.kind {
                FaultKind::CacheStaleFill => stale_fill_ms = Some(f.ms),
                // Store-mutation kinds act at CacheStore::open, not here.
                FaultKind::CacheTorn | FaultKind::CacheFlip => {}
                _ => match inject_fault(f, out, hb_enabled)? {
                    FaultOutcome::Normal => {}
                    FaultOutcome::DupDone => dup_done = true,
                },
            }
        }
        // Burst-decode up front when the coordinator offers the shared
        // cache (we need fingerprints before solving to probe it) or when
        // pipelined decode was requested; otherwise keep the sequential
        // admit path byte-for-byte as before.
        let serve_cache = engine.serve_cache_active();
        let mut decoded = None;
        let mut fills = Vec::new();
        if ((cache_plane && serve_cache) || decode_threads > 1) && !lines.is_empty() {
            let pool = pool.get_or_insert_with(|| {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(decode_threads.max(1))
                    .build()
                    .expect("pool handles are always constructible")
            });
            let numbered: Vec<(usize, &str)> = lines
                .iter()
                .enumerate()
                .map(|(i, l)| (i + 1, l.as_str()))
                .collect();
            let burst = crate::stream::decode_burst(pool, &numbered, serve_cache);
            if cache_plane && serve_cache {
                match cache_exchange(engine, &mut input, out, &burst)? {
                    Some(f) => fills = f,
                    None => return Ok(WorkerExit::Eof),
                }
            }
            decoded = Some(burst);
        }
        solve_shard(
            engine,
            &mut core,
            ShardJob {
                shard,
                attempt,
                worker_index,
                lines: &lines,
                decoded,
                fills,
                dup_done,
                stale_fill_ms,
            },
            out,
            hb_enabled,
        )?;
    }
}

fn parse_shard_header(line: &str) -> Option<(usize, u32, usize, bool)> {
    let mut it = line.split_whitespace();
    if it.next()? != "#shard" {
        return None;
    }
    let shard = it.next()?.parse().ok()?;
    let attempt = it.next()?.parse().ok()?;
    let n = it.next()?.parse().ok()?;
    let cache = match it.next() {
        None => false,
        Some("cache") => true,
        Some(_) => return None,
    };
    if it.next().is_some() {
        return None;
    }
    Some((shard, attempt, n, cache))
}

/// Probes the coordinator's shared cache for every distinct canonical
/// fingerprint the decoded shard needs that the local cache lacks, and
/// installs the returned hits. Returns the fingerprints the coordinator
/// reported missing (the post-solve `#cachefill` obligations), or `None`
/// when the coordinator closed the transport mid-exchange.
fn cache_exchange<R: BufRead, W: Write + Send>(
    engine: &Engine,
    input: &mut R,
    out: &Arc<Mutex<W>>,
    decoded: &[crate::stream::DecodedLine],
) -> io::Result<Option<Vec<u128>>> {
    let mut probes: Vec<u128> = Vec::new();
    let mut seen: HashSet<u128> = HashSet::new();
    for line in decoded {
        if let Ok((Some(fp), _)) = line {
            if seen.insert(*fp) && engine.serve_cached_peek(*fp).is_none() {
                probes.push(*fp);
            }
        }
    }
    if probes.is_empty() {
        return Ok(Some(Vec::new()));
    }
    {
        let mut w = out.lock().expect("worker output lock");
        for fp in &probes {
            writeln!(w, "#cacheq {fp:032x}")?;
        }
        w.flush()?;
    }
    // The coordinator answers every probe, in order, before anything
    // else travels down this transport (the worker holds the lease).
    let mut fills = Vec::new();
    let mut buf = String::new();
    for _ in 0..probes.len() {
        buf.clear();
        if input.read_line(&mut buf)? == 0 {
            return Ok(None);
        }
        let line = buf.trim_end();
        if let Some(rest) = line.strip_prefix("#cachehit ") {
            let payload = rest
                .split_once(' ')
                .and_then(|(fp_hex, payload)| {
                    let fp = u128::from_str_radix(fp_hex, 16).ok()?;
                    Some((fp, payload))
                })
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed #cachehit reply")
                })?;
            let (fp, payload) = payload;
            match Json::parse(payload)
                .ok()
                .as_ref()
                .and_then(crate::report::SolveReport::from_store_json)
            {
                // An unverifiable payload degrades to a local solve;
                // never a wrong answer.
                Some(report) => engine.serve_cache_install(fp, Arc::new(report)),
                None => fills.push(fp),
            }
        } else if let Some(fp_hex) = line.strip_prefix("#cachemiss ") {
            let fp = u128::from_str_radix(fp_hex.trim(), 16).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "malformed #cachemiss reply")
            })?;
            fills.push(fp);
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected line during cache exchange: `{line}`"),
            ));
        }
    }
    Ok(Some(fills))
}

/// What an injected fault asks the normal solve path to do afterwards.
enum FaultOutcome {
    Normal,
    /// Emit the `#done` tail twice (duplicate-commit probe).
    DupDone,
}

/// Applies an injected fault. `crash`/`garble`/`partial` terminate the
/// process; `hang` parks it (heartbeats off) until the coordinator's
/// health monitor kills it; `disconnect` raises a synthetic transport
/// error; `stall`, `slow`, and `dup-done` return to the solve path.
fn inject_fault<W: Write + Send>(
    f: FaultSpec,
    out: &Arc<Mutex<W>>,
    hb_enabled: &AtomicBool,
) -> io::Result<FaultOutcome> {
    match f.kind {
        FaultKind::Crash => std::process::exit(101),
        FaultKind::Hang => {
            hb_enabled.store(false, Ordering::Relaxed);
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        FaultKind::Garble => {
            let mut w = out.lock().expect("worker output lock");
            let _ = w.write_all(b"!!! injected garbled output !!!\n");
            let _ = w.flush();
            std::process::exit(3);
        }
        FaultKind::Partial => {
            let mut w = out.lock().expect("worker output lock");
            let _ = w.write_all(b"{\"id\":\"torn-report\",\"makespan\":");
            let _ = w.flush();
            std::process::exit(3);
        }
        FaultKind::Disconnect => Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "injected disconnect",
        )),
        FaultKind::Stall => {
            // Go fully silent long enough for the lease to lapse, then
            // resume: the late #done exercises the stale-attempt drop.
            hb_enabled.store(false, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(f.ms));
            hb_enabled.store(true, Ordering::Relaxed);
            Ok(FaultOutcome::Normal)
        }
        FaultKind::Slow => {
            // Straggle with heartbeats still flowing: hedge bait.
            std::thread::sleep(Duration::from_millis(f.ms));
            Ok(FaultOutcome::Normal)
        }
        FaultKind::DupDone => Ok(FaultOutcome::DupDone),
        // Routed before inject_fault (store mutation / fill timing).
        FaultKind::CacheTorn | FaultKind::CacheFlip | FaultKind::CacheStaleFill => {
            Ok(FaultOutcome::Normal)
        }
    }
}

/// One shard assignment as the worker solves it: the raw lines, the
/// optional pre-decoded burst, and the cache-plane obligations attached
/// to it.
struct ShardJob<'a> {
    shard: usize,
    attempt: u32,
    worker_index: Option<u64>,
    lines: &'a [String],
    decoded: Option<Vec<crate::stream::DecodedLine>>,
    fills: Vec<u128>,
    dup_done: bool,
    stale_fill_ms: Option<u64>,
}

fn solve_shard<W: Write + Send>(
    engine: &Engine,
    core: &mut ServiceCore,
    job: ShardJob<'_>,
    out: &Arc<Mutex<W>>,
    hb_enabled: &Arc<AtomicBool>,
) -> io::Result<()> {
    let started = Instant::now();
    core.begin(job.lines.len().max(1));
    let mut error = None;
    match job.decoded {
        Some(decoded) => {
            // Decoded lines carry their shard-local 1-based ordinal
            // already (decode_burst is handed numbered lines), so the
            // first error matches the sequential path byte-for-byte.
            for line in decoded {
                match line {
                    Ok((fingerprint, request)) => {
                        core.admit_prepared(engine, fingerprint, request, Instant::now());
                    }
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
        }
        None => {
            for (i, line) in job.lines.iter().enumerate() {
                // Line numbers are shard-local 1-based ordinals; the
                // coordinator translates them back to physical corpus
                // line numbers.
                if let Err(e) = core.admit_line(engine, i + 1, line, Instant::now()) {
                    error = Some(e);
                    break;
                }
            }
        }
    }
    core.flush_with(engine, |bytes, _| {
        out.lock().expect("worker output lock").write_all(bytes)
    })?;
    let outcome = core.finish(started, error);
    // Honour #cachefill obligations before #done: the lease is still
    // live here, so the coordinator attributes the fills to this
    // attempt. The stale-fill fault delays them past lease expiry with
    // heartbeats dark, proving the coordinator drops what arrives late.
    if outcome.error.is_none() && !job.fills.is_empty() {
        if let Some(ms) = job.stale_fill_ms {
            hb_enabled.store(false, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(ms));
            hb_enabled.store(true, Ordering::Relaxed);
        }
        let mut w = out.lock().expect("worker output lock");
        for fp in &job.fills {
            if let Some(report) = engine.serve_cached_peek(*fp) {
                writeln!(w, "#cachefill {fp:032x} {}", report.to_store_json())?;
            }
        }
        w.flush()?;
    }
    let tail = match &outcome.error {
        None => {
            let mut obj = vec![
                ("shard".into(), Json::Num(job.shard as i128)),
                ("attempt".into(), Json::Num(job.attempt as i128)),
            ];
            obj.extend(ShardStats::from_stream(&outcome.stats).to_json_fields());
            format!("#done {}", Json::Obj(obj))
        }
        Some(e) => format!(
            "#error {}",
            corpus_error_json(job.shard, job.attempt, job.worker_index, e)
        ),
    };
    let mut w = out.lock().expect("worker output lock");
    for _ in 0..if job.dup_done { 2 } else { 1 } {
        w.write_all(tail.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

fn corpus_error_json(shard: usize, attempt: u32, worker: Option<u64>, e: &CorpusError) -> Json {
    let (kind, line, at, reason) = match e {
        CorpusError::Json { line, error } => ("json", *line, error.at, error.reason.clone()),
        CorpusError::Malformed { line, reason } => ("malformed", *line, 0, reason.clone()),
        CorpusError::Io { line, message } => ("io", *line, 0, message.clone()),
    };
    let mut obj = vec![
        ("shard".into(), Json::Num(shard as i128)),
        ("attempt".into(), Json::Num(attempt as i128)),
    ];
    if let Some(w) = worker {
        obj.push(("worker".into(), Json::Num(w as i128)));
    }
    obj.extend([
        ("local_line".into(), Json::Num(line as i128)),
        ("kind".into(), Json::Str(kind.into())),
        ("at".into(), Json::Num(at as i128)),
        ("reason".into(), Json::Str(reason)),
    ]);
    Json::Obj(obj)
}

fn corpus_error_from_json(v: &Json, global_line: usize) -> Option<CorpusError> {
    let reason = v.get("reason")?.as_str()?.to_string();
    Some(match v.get("kind")?.as_str()? {
        "json" => CorpusError::Json {
            line: global_line,
            error: JsonError {
                at: v.get("at")?.as_usize()?,
                reason,
            },
        },
        "malformed" => CorpusError::Malformed {
            line: global_line,
            reason,
        },
        _ => CorpusError::Io {
            line: global_line,
            message: reason,
        },
    })
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Configuration of one dispatch run.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Worker argv: program plus arguments (typically the `msrs` binary
    /// with the `worker` subcommand and the engine flags). May be empty
    /// only when `workers == 0` (remote-only fleet).
    pub worker_cmd: Vec<String>,
    /// Local child worker processes to keep running (remote workers join
    /// on top of these).
    pub workers: usize,
    /// Meaningful corpus lines per shard (identical boundaries to
    /// `msrs batch --shard-size`).
    pub shard_size: usize,
    /// Attempts per shard before it is quarantined.
    pub max_attempts: u32,
    /// Base retry backoff; doubles per failed attempt.
    pub retry_backoff: Duration,
    /// Silence deadline for a busy worker (no reports, no heartbeats).
    pub heartbeat_timeout: Duration,
    /// Optional wall-clock deadline per shard attempt.
    pub shard_timeout: Option<Duration>,
    /// Graceful stop after this many shards have been emitted (resume
    /// finishes the run) — deterministic mid-run interruption for tests.
    pub stop_after_shards: Option<usize>,
    /// Straggler hedging threshold as a multiple of the trailing median
    /// committed-attempt time; ≤ 0 disables hedging (the default).
    pub hedge_multiplier: f64,
    /// Floor for the hedging threshold, so tiny medians don't cause
    /// hedge storms.
    pub hedge_min: Duration,
    /// [`crate::EngineConfig::content_fingerprint`] of the engine
    /// configuration the workers run — the checkpoint's run key and the
    /// remote handshake's compatibility check.
    pub config_fp: u64,
    /// Durable cache store backing the fleet-shared cache plane; `None`
    /// disables the plane (workers solve everything locally).
    pub cache_path: Option<PathBuf>,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            worker_cmd: Vec::new(),
            workers: 2,
            shard_size: crate::stream::DEFAULT_SHARD_SIZE,
            max_attempts: 3,
            retry_backoff: Duration::from_millis(50),
            heartbeat_timeout: DEFAULT_HEARTBEAT_TIMEOUT,
            shard_timeout: None,
            stop_after_shards: None,
            hedge_multiplier: 0.0,
            hedge_min: Duration::from_millis(250),
            config_fp: 0,
            cache_path: None,
        }
    }
}

/// A shard the coordinator quarantined after exhausting its retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// 0-based shard index.
    pub shard: usize,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// Ordinal of the last worker that failed the shard, when known.
    pub worker: Option<u64>,
    /// The last failure observed.
    pub message: String,
}

/// What a dispatch run produced.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// Merged run summary (instances, ratios, phase splits) across
    /// resumed + freshly completed shards.
    pub stats: StreamStats,
    /// Shards emitted to the output (resumed + fresh, incl. quarantined).
    pub shards_total: usize,
    /// Shards skipped because the checkpoint already recorded them.
    pub shards_resumed: usize,
    /// Shard attempts re-queued after worker failures.
    pub retries: u64,
    /// Worker processes spawned (initial fleet + replacements).
    pub workers_spawned: u64,
    /// Remote TCP workers accepted over the run.
    pub remote_workers: u64,
    /// Remote workers that reported a prior session in their handshake.
    pub reconnects: u64,
    /// Leases revoked for heartbeat silence or shard deadline.
    pub lease_expiries: u64,
    /// Speculative duplicate attempts launched.
    pub hedges_launched: u64,
    /// Hedge attempts that won their race and committed.
    pub hedges_won: u64,
    /// Hedge attempts whose twin committed first.
    pub hedges_wasted: u64,
    /// Stale-attempt `#done`/`#error` lines discarded un-committed.
    pub stale_drops: u64,
    /// `#cacheq` probes answered from the coordinator's durable store.
    pub fleet_cache_hits: u64,
    /// `#cachefill` entries dropped because the sending lease had lapsed.
    pub stale_fills_dropped: u64,
    /// Shards that exhausted their retry budget, in shard order.
    pub quarantined: Vec<QuarantinedShard>,
    /// True when the run stopped early (graceful drain) with a
    /// resumable checkpoint rather than finishing the corpus.
    pub interrupted: bool,
    /// `Some` when the corpus itself was malformed/unreadable; reports
    /// for every line before the error have been emitted.
    pub error: Option<CorpusError>,
}

/// One shard read from the corpus: trimmed meaningful lines plus their
/// physical 1-based line numbers and the raw-text fingerprint.
struct Shard {
    index: usize,
    lines: Vec<String>,
    line_nos: Vec<usize>,
    fp: u64,
}

/// Incremental corpus reader producing [`Shard`]s; memory stays
/// O(shard_size) — only in-flight shards are resident.
struct ShardSource<R> {
    reader: R,
    line_no: usize,
    next_index: usize,
    done: bool,
}

impl<R: BufRead> ShardSource<R> {
    fn new(reader: R) -> Self {
        ShardSource {
            reader,
            line_no: 0,
            next_index: 0,
            done: false,
        }
    }

    fn next_shard(&mut self, shard_size: usize) -> Result<Option<Shard>, CorpusError> {
        if self.done {
            return Ok(None);
        }
        let mut lines = Vec::new();
        let mut line_nos = Vec::new();
        let mut hash = 0xcbf29ce484222325u64;
        let mut buf = String::new();
        while lines.len() < shard_size {
            buf.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut buf) {
                Ok(0) => {
                    self.done = true;
                    self.line_no -= 1;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Err(CorpusError::Io {
                        line: self.line_no,
                        message: e.to_string(),
                    });
                }
            }
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            hash = fnv1a_64_continue(hash, line.as_bytes());
            hash = fnv1a_64_continue(hash, b"\n");
            lines.push(line.to_string());
            line_nos.push(self.line_no);
        }
        if lines.is_empty() {
            self.done = true;
            return Ok(None);
        }
        let shard = Shard {
            index: self.next_index,
            lines,
            line_nos,
            fp: hash,
        };
        self.next_index += 1;
        Ok(Some(shard))
    }
}

/// Continues an FNV-1a hash across chunks (same constants as
/// [`crate::checkpoint::fnv1a_64`]).
fn fnv1a_64_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Events a worker's output reader thread reports to the coordinator.
pub(crate) enum Event {
    /// A complete report line (without its newline).
    Report(String),
    /// `#hb`.
    Heartbeat,
    /// `#done` with parsed stats.
    Done {
        shard: usize,
        attempt: u32,
        stats: ShardStats,
    },
    /// `#error` with the parsed corpus-error payload.
    Error(Json),
    /// `#cacheq` — a shared-cache probe for a canonical fingerprint.
    CacheQ(u128),
    /// `#cachefill` — a freshly solved report offered to the shared
    /// cache (fingerprint + still-unverified payload text).
    CacheFill(u128, String),
    /// A line that is not part of the protocol (garbled output, torn
    /// trailing line at EOF).
    Garbage(String),
    /// The worker's output stream closed.
    Eof,
}

/// What the coordinator's event channel carries: worker protocol events
/// plus remote workers that completed the handshake.
pub(crate) enum Msg {
    Worker(u64, Event),
    RemoteJoined { stream: TcpStream, reconnects: u64 },
}

/// How a worker is attached to the coordinator.
enum Transport {
    Child {
        child: Child,
        stdin: Option<ChildStdin>,
    },
    Remote {
        stream: TcpStream,
    },
}

impl Transport {
    fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self {
            Transport::Child { stdin, .. } => match stdin.as_mut() {
                Some(stdin) => stdin.write_all(bytes).and_then(|()| stdin.flush()),
                None => Err(io::Error::new(io::ErrorKind::BrokenPipe, "stdin closed")),
            },
            Transport::Remote { stream } => stream.write_all(bytes).and_then(|()| stream.flush()),
        }
    }
}

/// A worker's lease state as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    Idle,
    Busy,
    /// A remote worker whose lease was revoked (heartbeat silence or
    /// deadline) but whose socket is still open: anything it sends for
    /// the stale attempt is discarded, and a `#done`/`#error` returns it
    /// to `Idle`.
    Zombie,
}

struct WorkerHandle {
    ordinal: u64,
    transport: Transport,
    reader: Option<JoinHandle<()>>,
    state: WorkerState,
    last_output: Instant,
    shard_started: Instant,
}

impl WorkerHandle {
    fn is_remote(&self) -> bool {
        matches!(self.transport, Transport::Remote { .. })
    }

    /// Tears the worker down: kill + reap a child, shut a socket down,
    /// and join the reader thread.
    fn teardown(self) {
        let WorkerHandle {
            transport,
            mut reader,
            ..
        } = self;
        match transport {
            Transport::Child { mut child, stdin } => {
                drop(stdin);
                let _ = child.kill();
                let _ = child.wait();
            }
            Transport::Remote { stream } => {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(reader) = reader.take() {
            let _ = reader.join();
        }
    }
}

/// Per-shard lease bookkeeping: the attempt counter, live attempt count,
/// and failure history. Lives in `tracks` from assignment until the
/// shard commits or quarantines.
struct ShardTrack {
    shard: Arc<Shard>,
    /// Failed attempts so far.
    failures: u32,
    /// Next attempt id to hand out (1-based, monotonic — stale attempts
    /// are recognized by comparing against this sequence).
    next_attempt: u32,
    /// Attempts currently running (2 while a hedge race is on).
    active: u32,
    /// The attempt id of the outstanding hedge, if one was launched.
    hedge_attempt: Option<u32>,
    last_failure: String,
    last_worker: Option<u64>,
}

/// A shard attempt currently leased to a worker.
struct Inflight {
    index: usize,
    attempt: u32,
    /// Buffered report bytes — committed only on a matching `#done`.
    reports: Vec<u8>,
    report_count: usize,
    started: Instant,
}

/// A shard waiting for its retry backoff to elapse.
struct Retry {
    index: usize,
    not_before: Instant,
}

/// A shard whose output is final, waiting to be emitted in order.
struct Completed {
    bytes: Vec<u8>,
    lines: usize,
    fp: u64,
    attempts: u32,
    stats: ShardStats,
    quarantined: bool,
    /// A decode error terminating the stream at this shard (the bytes
    /// hold the prefix reports before the error).
    error: Option<CorpusError>,
}

/// The coordinator's side of the fleet-shared cache plane: the durable
/// store plus an in-memory index of every payload it holds.
struct CacheAuthority {
    store: CacheStore,
    map: HashMap<u128, Arc<str>>,
}

struct Coordinator<'a> {
    cfg: &'a DispatchConfig,
    /// `Some` when a `--cache-path` store backs the fleet cache plane.
    cache: Option<CacheAuthority>,
    workers: Vec<WorkerHandle>,
    inflight: HashMap<u64, Inflight>,
    tracks: HashMap<usize, ShardTrack>,
    /// Shards whose output is final (committed, errored, or
    /// quarantined): late attempts for these are stale drops.
    committed: HashSet<usize>,
    retries: Vec<Retry>,
    completed: BTreeMap<usize, Completed>,
    /// Trailing committed-attempt durations for the hedging median.
    durations: VecDeque<Duration>,
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    next_ordinal: u64,
    spawned: u64,
    retry_count: u64,
    remote_workers: u64,
    reconnects: u64,
    lease_expiries: u64,
    hedges: u64,
    hedge_wins: u64,
    hedge_wasted: u64,
    stale_drops: u64,
    fleet_cache_hits: u64,
    stale_fills_dropped: u64,
    quarantined: Vec<QuarantinedShard>,
}

impl<'a> Coordinator<'a> {
    fn new(cfg: &'a DispatchConfig) -> Self {
        let (tx, rx) = mpsc::channel();
        Coordinator {
            cfg,
            cache: None,
            workers: Vec::new(),
            inflight: HashMap::new(),
            tracks: HashMap::new(),
            committed: HashSet::new(),
            retries: Vec::new(),
            completed: BTreeMap::new(),
            durations: VecDeque::new(),
            tx,
            rx,
            next_ordinal: 0,
            spawned: 0,
            retry_count: 0,
            remote_workers: 0,
            reconnects: 0,
            lease_expiries: 0,
            hedges: 0,
            hedge_wins: 0,
            hedge_wasted: 0,
            stale_drops: 0,
            fleet_cache_hits: 0,
            stale_fills_dropped: 0,
            quarantined: Vec::new(),
        }
    }

    fn spawn_worker(&mut self) -> io::Result<()> {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let mut child = Command::new(&self.cfg.worker_cmd[0])
            .args(&self.cfg.worker_cmd[1..])
            .env("MSRS_WORKER_INDEX", ordinal.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("piped child stdout");
        let tx = self.tx.clone();
        let reader = std::thread::spawn(move || read_worker_lines(ordinal, stdout, &tx));
        registry().dispatch_workers_spawned_total.inc();
        self.spawned += 1;
        self.workers.push(WorkerHandle {
            ordinal,
            transport: Transport::Child {
                child,
                stdin: Some(stdin.expect("piped child stdin")),
            },
            reader: Some(reader),
            state: WorkerState::Idle,
            last_output: Instant::now(),
            shard_started: Instant::now(),
        });
        Ok(())
    }

    /// Accepts a remote worker that completed the handshake: sends the
    /// `#welcome`, starts its reader thread, and parks it idle.
    fn register_remote(&mut self, stream: TcpStream, reconnects: u64) {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let _ = stream.set_nodelay(true);
        let mut stream = stream;
        let welcome =
            format!("#welcome {{\"proto\":{REMOTE_PROTO_VERSION},\"worker\":{ordinal}}}\n");
        if stream.write_all(welcome.as_bytes()).is_err() {
            return; // died between handshake and registration
        }
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let tx = self.tx.clone();
        let reader = std::thread::spawn(move || read_worker_lines(ordinal, read_half, &tx));
        registry().dispatch_remote_workers_total.inc();
        self.remote_workers += 1;
        if reconnects > 0 {
            registry().dispatch_reconnects_total.inc();
            self.reconnects += 1;
        }
        self.workers.push(WorkerHandle {
            ordinal,
            transport: Transport::Remote { stream },
            reader: Some(reader),
            state: WorkerState::Idle,
            last_output: Instant::now(),
            shard_started: Instant::now(),
        });
    }

    /// Starts tracking a fresh shard from the source; returns its index.
    fn track(&mut self, shard: Shard) -> usize {
        let index = shard.index;
        self.tracks.insert(
            index,
            ShardTrack {
                shard: Arc::new(shard),
                failures: 0,
                next_attempt: 1,
                active: 0,
                hedge_attempt: None,
                last_failure: String::new(),
                last_worker: None,
            },
        );
        index
    }

    /// Leases the next attempt of shard `index` to the idle worker at
    /// `pos`. On a transport failure the worker is torn down and the
    /// attempt goes through the normal failure/retry path.
    fn assign(&mut self, pos: usize, index: usize) {
        let track = self.tracks.get_mut(&index).expect("assigning known shard");
        let attempt = track.next_attempt;
        track.next_attempt += 1;
        track.active += 1;
        let shard = Arc::clone(&track.shard);
        let mut payload =
            String::with_capacity(shard.lines.iter().map(|l| l.len() + 1).sum::<usize>() + 64);
        // The trailing `cache` token advertises the shared cache plane;
        // workers without a serve-mode cache simply ignore the offer.
        payload.push_str(&format!(
            "#shard {} {} {}{}\n",
            shard.index,
            attempt,
            shard.lines.len(),
            if self.cache.is_some() { " cache" } else { "" }
        ));
        for line in &shard.lines {
            payload.push_str(line);
            payload.push('\n');
        }
        payload.push_str("#run\n");
        let w = &mut self.workers[pos];
        let ordinal = w.ordinal;
        w.state = WorkerState::Busy;
        w.last_output = Instant::now();
        w.shard_started = Instant::now();
        let sent = w.transport.send(payload.as_bytes());
        self.inflight.insert(
            ordinal,
            Inflight {
                index,
                attempt,
                reports: Vec::new(),
                report_count: 0,
                started: Instant::now(),
            },
        );
        if let Err(e) = sent {
            self.fail_worker(ordinal, &format!("failed to send shard: {e}"));
        }
    }

    fn idle_worker(&self) -> Option<usize> {
        self.workers
            .iter()
            .position(|w| w.state == WorkerState::Idle)
    }

    /// Records a failed attempt of shard `index`. If a twin attempt is
    /// still running (hedge race), the shard stays leased; otherwise it
    /// is retried with backoff or quarantined. No-op when the shard
    /// already committed (a hedge loser dying late).
    fn fail_attempt(&mut self, index: usize, attempt: u32, ordinal: u64, reason: &str) {
        let Some(track) = self.tracks.get_mut(&index) else {
            return; // shard already committed/quarantined: nothing to redo
        };
        track.active = track.active.saturating_sub(1);
        track.failures += 1;
        track.last_failure = reason.to_string();
        track.last_worker = Some(ordinal);
        if track.hedge_attempt == Some(attempt) {
            track.hedge_attempt = None;
        }
        if track.active > 0 {
            return; // the surviving twin is the live retry
        }
        let failures = track.failures;
        if failures >= self.cfg.max_attempts {
            let track = self.tracks.remove(&index).expect("present above");
            registry().dispatch_quarantines_total.inc();
            self.quarantined.push(QuarantinedShard {
                shard: index,
                attempts: failures,
                worker: track.last_worker,
                message: track.last_failure.clone(),
            });
            let mut obj = vec![
                ("error".into(), Json::Str("shard_quarantined".into())),
                ("shard".into(), Json::Num(index as i128)),
                ("attempts".into(), Json::Num(failures as i128)),
                ("lines".into(), Json::Num(track.shard.lines.len() as i128)),
            ];
            if let Some(w) = track.last_worker {
                obj.push(("worker".into(), Json::Num(w as i128)));
            }
            obj.push(("message".into(), Json::Str(track.last_failure.clone())));
            let line = Json::Obj(obj);
            self.committed.insert(index);
            self.completed.insert(
                index,
                Completed {
                    bytes: format!("{line}\n").into_bytes(),
                    lines: track.shard.lines.len(),
                    fp: track.shard.fp,
                    attempts: failures,
                    stats: ShardStats::default(),
                    quarantined: true,
                    error: None,
                },
            );
        } else {
            registry().dispatch_retries_total.inc();
            self.retry_count += 1;
            // Exponential backoff, capped at 2⁶× the base.
            let factor = 1u32 << (failures - 1).min(6);
            self.retries.push(Retry {
                index,
                not_before: Instant::now() + self.cfg.retry_backoff * factor,
            });
        }
    }

    /// Removes and tears down a worker; if it held a lease, the attempt
    /// fails through [`Self::fail_attempt`].
    fn fail_worker(&mut self, ordinal: u64, reason: &str) {
        let Some(pos) = self.workers.iter().position(|w| w.ordinal == ordinal) else {
            return;
        };
        let w = self.workers.remove(pos);
        w.teardown();
        registry().dispatch_worker_crashes_total.inc();
        if let Some(entry) = self.inflight.remove(&ordinal) {
            self.fail_attempt(entry.index, entry.attempt, ordinal, reason);
        }
    }

    /// Revokes a remote worker's lease without dropping its socket: the
    /// worker becomes a zombie whose stale output is discarded, and the
    /// shard is requeued immediately.
    fn revoke_lease(&mut self, pos: usize, reason: &str) {
        let ordinal = self.workers[pos].ordinal;
        self.workers[pos].state = WorkerState::Zombie;
        if let Some(entry) = self.inflight.remove(&ordinal) {
            self.fail_attempt(entry.index, entry.attempt, ordinal, reason);
        }
    }

    fn stale_drop(&mut self) {
        registry().dispatch_stale_drops_total.inc();
        self.stale_drops += 1;
    }

    /// The next `recv_timeout` bound: the soonest health deadline or
    /// retry release, capped so shutdown flags and hedging checks happen
    /// promptly.
    fn next_deadline(&self) -> Duration {
        let mut deadline = Duration::from_millis(100);
        let now = Instant::now();
        for w in self.workers.iter().filter(|w| w.state == WorkerState::Busy) {
            let hb_left = self
                .cfg
                .heartbeat_timeout
                .saturating_sub(now.duration_since(w.last_output));
            deadline = deadline.min(hb_left);
            if let Some(limit) = self.cfg.shard_timeout {
                deadline = deadline.min(limit.saturating_sub(now.duration_since(w.shard_started)));
            }
        }
        for r in &self.retries {
            deadline = deadline.min(r.not_before.saturating_duration_since(now));
        }
        deadline.max(Duration::from_millis(1))
    }

    /// Expires the lease of any busy worker past its silence or shard
    /// deadline: child workers are killed and replaced, remote workers
    /// are zombified (their socket may still wake up).
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let late: Vec<(u64, bool, String)> = self
            .workers
            .iter()
            .filter(|w| w.state == WorkerState::Busy)
            .filter_map(|w| {
                let silent = now.duration_since(w.last_output);
                if silent > self.cfg.heartbeat_timeout {
                    return Some((
                        w.ordinal,
                        w.is_remote(),
                        format!("no output for {} ms", silent.as_millis()),
                    ));
                }
                if let Some(limit) = self.cfg.shard_timeout {
                    let running = now.duration_since(w.shard_started);
                    if running > limit {
                        return Some((
                            w.ordinal,
                            w.is_remote(),
                            format!("shard deadline exceeded ({} ms)", running.as_millis()),
                        ));
                    }
                }
                None
            })
            .collect();
        for (ordinal, remote, reason) in late {
            registry().dispatch_lease_expiries_total.inc();
            self.lease_expiries += 1;
            if remote {
                if let Some(pos) = self.workers.iter().position(|w| w.ordinal == ordinal) {
                    self.revoke_lease(pos, &reason);
                }
            } else {
                self.fail_worker(ordinal, &reason);
            }
        }
    }

    /// Launches speculative duplicate attempts for stragglers while idle
    /// workers exist. See the module docs for the trigger condition.
    fn maybe_hedge(&mut self) {
        if self.cfg.hedge_multiplier <= 0.0 || self.durations.len() < HEDGE_MIN_SAMPLES {
            return;
        }
        let mut sorted: Vec<Duration> = self.durations.iter().copied().collect();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let threshold = median
            .mul_f64(self.cfg.hedge_multiplier)
            .max(self.cfg.hedge_min);
        loop {
            let Some(pos) = self.idle_worker() else {
                return;
            };
            let now = Instant::now();
            // The slowest eligible straggler: active solo attempt, past
            // the threshold, not already hedged.
            let candidate = self
                .inflight
                .values()
                .filter(|inf| now.duration_since(inf.started) > threshold)
                .filter(|inf| {
                    self.tracks
                        .get(&inf.index)
                        .is_some_and(|t| t.active == 1 && t.hedge_attempt.is_none())
                })
                .min_by_key(|inf| inf.started)
                .map(|inf| inf.index);
            let Some(index) = candidate else {
                return;
            };
            let track = self.tracks.get_mut(&index).expect("candidate is tracked");
            track.hedge_attempt = Some(track.next_attempt);
            registry().dispatch_hedges_total.inc();
            self.hedges += 1;
            self.assign(pos, index);
        }
    }

    fn handle_msg(&mut self, msg: Msg) {
        match msg {
            Msg::Worker(ordinal, event) => self.handle_event(ordinal, event),
            Msg::RemoteJoined { stream, reconnects } => self.register_remote(stream, reconnects),
        }
    }

    fn handle_event(&mut self, ordinal: u64, event: Event) {
        let Some(pos) = self.workers.iter().position(|w| w.ordinal == ordinal) else {
            return; // stale reader of a worker we already tore down
        };
        self.workers[pos].last_output = Instant::now();
        match event {
            Event::Heartbeat => {}
            Event::Report(line) => {
                if self.workers[pos].state == WorkerState::Zombie {
                    return; // stale attempt's reports: drop silently
                }
                match self.inflight.get_mut(&ordinal) {
                    Some(entry) => {
                        entry.reports.extend_from_slice(line.as_bytes());
                        entry.reports.push(b'\n');
                        entry.report_count += 1;
                    }
                    None => self.fail_worker(ordinal, "report line from an idle worker"),
                }
            }
            Event::Done {
                shard,
                attempt,
                stats,
            } => self.handle_done(pos, ordinal, shard, attempt, stats),
            Event::Error(payload) => self.handle_error(pos, ordinal, payload),
            Event::CacheQ(fp) => self.handle_cacheq(pos, ordinal, fp),
            Event::CacheFill(fp, payload) => self.handle_cachefill(pos, ordinal, fp, &payload),
            Event::Garbage(line) => {
                let reason = format!("garbled worker output: `{}`", truncate(&line, 120));
                self.fail_worker(ordinal, &reason);
            }
            Event::Eof => {
                self.fail_worker(ordinal, "worker exited mid-run");
            }
        }
    }

    fn handle_done(
        &mut self,
        pos: usize,
        ordinal: u64,
        shard: usize,
        attempt: u32,
        stats: ShardStats,
    ) {
        if self.workers[pos].state == WorkerState::Zombie {
            // The revoked lease's late #done: the worker is healthy
            // again, but the attempt is stale.
            self.stale_drop();
            self.workers[pos].state = WorkerState::Idle;
            return;
        }
        let Some(entry) = self.inflight.get(&ordinal) else {
            if self.committed.contains(&shard) {
                self.stale_drop(); // duplicate #done for a committed shard
            } else {
                self.fail_worker(ordinal, "#done from an idle worker");
            }
            return;
        };
        if entry.index != shard
            || entry.attempt != attempt
            || entry.report_count as u64 != stats.instances
        {
            let reason = format!(
                "shard report mismatch (#done shard {shard} attempt {attempt} × leased {}/{}, \
                 {} report(s) × {} instance(s))",
                entry.index, entry.attempt, entry.report_count, stats.instances
            );
            self.fail_worker(ordinal, &reason);
            return;
        }
        let entry = self.inflight.remove(&ordinal).expect("checked above");
        self.workers[pos].state = WorkerState::Idle;
        let Some(track) = self.tracks.remove(&shard) else {
            // The hedge twin already committed this shard.
            self.stale_drop();
            registry().dispatch_hedge_wasted_total.inc();
            self.hedge_wasted += 1;
            return;
        };
        if track.hedge_attempt == Some(attempt) {
            registry().dispatch_hedge_wins_total.inc();
            self.hedge_wins += 1;
        }
        self.durations.push_back(entry.started.elapsed());
        if self.durations.len() > MEDIAN_WINDOW {
            self.durations.pop_front();
        }
        self.committed.insert(shard);
        self.completed.insert(
            shard,
            Completed {
                bytes: entry.reports,
                lines: track.shard.lines.len(),
                fp: track.shard.fp,
                attempts: attempt,
                stats,
                quarantined: false,
                error: None,
            },
        );
    }

    fn handle_error(&mut self, pos: usize, ordinal: u64, payload: Json) {
        if self.workers[pos].state == WorkerState::Zombie {
            self.stale_drop();
            self.workers[pos].state = WorkerState::Idle;
            return;
        }
        let Some(entry) = self.inflight.remove(&ordinal) else {
            let shard = payload.get("shard").and_then(Json::as_usize);
            if shard.is_some_and(|s| self.committed.contains(&s)) {
                self.stale_drop();
            } else {
                self.fail_worker(ordinal, "#error from an idle worker");
            }
            return;
        };
        self.workers[pos].state = WorkerState::Idle;
        let Some(track) = self.tracks.remove(&entry.index) else {
            self.stale_drop();
            registry().dispatch_hedge_wasted_total.inc();
            self.hedge_wasted += 1;
            return;
        };
        let local = payload
            .get("local_line")
            .and_then(Json::as_usize)
            .unwrap_or(1);
        let global = track
            .shard
            .line_nos
            .get(local.saturating_sub(1))
            .copied()
            .unwrap_or_else(|| track.shard.line_nos.last().copied().unwrap_or(0));
        let error = corpus_error_from_json(&payload, global).unwrap_or(CorpusError::Io {
            line: global,
            message: "worker reported an unparsable corpus error".into(),
        });
        self.committed.insert(entry.index);
        self.completed.insert(
            entry.index,
            Completed {
                bytes: entry.reports,
                lines: track.shard.lines.len(),
                fp: track.shard.fp,
                attempts: entry.attempt,
                stats: ShardStats::default(),
                quarantined: false,
                error: Some(error),
            },
        );
    }

    /// Answers a `#cacheq` probe. Every probe gets exactly one reply —
    /// even a zombie's, and even without a cache authority — because the
    /// probing worker blocks reading one reply line per probe; silence
    /// here would deadlock it into a lease expiry.
    fn handle_cacheq(&mut self, pos: usize, ordinal: u64, fp: u128) {
        let hit = if self.workers[pos].state == WorkerState::Zombie {
            None // stale lease: don't leak cache state to a revoked attempt
        } else {
            self.cache.as_ref().and_then(|c| c.map.get(&fp)).cloned()
        };
        let reply = match hit {
            Some(payload) => {
                registry().dispatch_fleet_cache_hits_total.inc();
                self.fleet_cache_hits += 1;
                format!("#cachehit {fp:032x} {payload}\n")
            }
            None => format!("#cachemiss {fp:032x}\n"),
        };
        if let Err(e) = self.workers[pos].transport.send(reply.as_bytes()) {
            self.fail_worker(ordinal, &format!("failed to answer cache probe: {e}"));
        }
    }

    /// Accepts (or drops) a `#cachefill` offer. Fills are only trusted
    /// from a live lease: a zombie or idle sender means the lease lapsed
    /// before the fill arrived, so it is dropped as stale. Accepted
    /// payloads are re-parsed and re-serialized — the store only ever
    /// holds bytes the coordinator produced itself.
    fn handle_cachefill(&mut self, pos: usize, ordinal: u64, fp: u128, payload: &str) {
        if self.workers[pos].state == WorkerState::Zombie || !self.inflight.contains_key(&ordinal) {
            registry().dispatch_stale_fills_dropped_total.inc();
            self.stale_fills_dropped += 1;
            return;
        }
        let Some(cache) = self.cache.as_mut() else {
            return; // no authority: a confused worker's fill is harmless
        };
        if cache.map.contains_key(&fp) {
            return; // racing fill from a twin attempt: first one wins
        }
        let Some(report) = Json::parse(payload)
            .ok()
            .as_ref()
            .and_then(SolveReport::from_store_json)
        else {
            return; // unverifiable payload: never persist it
        };
        let canonical: Arc<str> = report.to_store_json().to_string().into();
        let append = cache
            .store
            .append(fp, self.cfg.config_fp, &canonical)
            .and_then(|()| cache.store.sync());
        if let Err(e) = append {
            eprintln!("msrs: cache store append failed: {e}");
            return;
        }
        cache.map.insert(fp, canonical);
    }

    /// Any leased attempt for a still-tracked shard? (Stale leases held
    /// by zombies don't count: their shard already committed.)
    fn busy(&self) -> bool {
        self.inflight
            .values()
            .any(|inf| self.tracks.contains_key(&inf.index))
    }

    /// Tears the fleet down: ask everyone to exit cleanly (EOF for
    /// children, `#shutdown` for remotes so they don't redial), then
    /// kill/close anything still attached and reap it.
    fn shutdown_fleet(&mut self) {
        for w in &mut self.workers {
            match &mut w.transport {
                Transport::Child { stdin, .. } => {
                    drop(stdin.take());
                }
                Transport::Remote { stream } => {
                    let _ = stream.write_all(b"#shutdown\n");
                    let _ = stream.flush();
                }
            }
        }
        for w in self.workers.drain(..) {
            w.teardown();
        }
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// Parses one worker output stream (child stdout or socket read half)
/// into [`Event`]s. A final line without its newline (a worker dying
/// mid-write) is garbage, never a report.
pub(crate) fn read_worker_lines<R: Read>(ordinal: u64, input: R, tx: &Sender<Msg>) {
    let mut reader = BufReader::new(input);
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let terminated = buf.ends_with('\n');
        let line = buf.trim_end_matches(['\n', '\r']);
        let event = if !terminated {
            Event::Garbage(line.to_string())
        } else if line == "#hb" {
            Event::Heartbeat
        } else if let Some(payload) = line.strip_prefix("#done ") {
            match Json::parse(payload).ok().as_ref().and_then(parse_done) {
                Some((shard, attempt, stats)) => Event::Done {
                    shard,
                    attempt,
                    stats,
                },
                None => Event::Garbage(line.to_string()),
            }
        } else if let Some(payload) = line.strip_prefix("#error ") {
            match Json::parse(payload) {
                Ok(v) => Event::Error(v),
                Err(_) => Event::Garbage(line.to_string()),
            }
        } else if let Some(fp_hex) = line.strip_prefix("#cacheq ") {
            match u128::from_str_radix(fp_hex.trim(), 16) {
                Ok(fp) => Event::CacheQ(fp),
                Err(_) => Event::Garbage(line.to_string()),
            }
        } else if let Some(rest) = line.strip_prefix("#cachefill ") {
            match rest.split_once(' ').and_then(|(fp_hex, payload)| {
                Some((u128::from_str_radix(fp_hex, 16).ok()?, payload))
            }) {
                Some((fp, payload)) => Event::CacheFill(fp, payload.to_string()),
                None => Event::Garbage(line.to_string()),
            }
        } else if line.starts_with('{') {
            Event::Report(line.to_string())
        } else {
            Event::Garbage(line.to_string())
        };
        if tx.send(Msg::Worker(ordinal, event)).is_err() {
            return; // coordinator gone
        }
    }
    let _ = tx.send(Msg::Worker(ordinal, Event::Eof));
}

fn parse_done(v: &Json) -> Option<(usize, u32, ShardStats)> {
    Some((
        v.get("shard")?.as_usize()?,
        v.get("attempt")?.as_u64()? as u32,
        ShardStats::from_json(v)?,
    ))
}

/// The dispatch coordinator over a purely local child-process fleet; see
/// [`dispatch_fleet`] for the mixed local/remote version this wraps.
pub fn dispatch<R: BufRead>(
    input: R,
    out_path: &Path,
    checkpoint_path: Option<&Path>,
    cfg: &DispatchConfig,
    shutdown: Option<&AtomicBool>,
) -> io::Result<DispatchOutcome> {
    dispatch_fleet(input, out_path, checkpoint_path, cfg, shutdown, None)
}

/// The dispatch coordinator: shards `input`, fans the shards out to a
/// fleet of local child workers and/or remote TCP workers accepted on
/// `remote`, and merges their reports in shard order into the file at
/// `out_path`. With `checkpoint_path`, completed shards are journaled
/// durably and an existing journal resumes the run (validating that the
/// corpus and configuration are unchanged) — identically across
/// transports. `shutdown` — when set by the caller, e.g. from a
/// `#shutdown` stdin line — triggers a graceful drain.
///
/// Returns `Err` only for coordinator-level I/O and setup failures;
/// corpus decode errors travel in [`DispatchOutcome::error`] exactly as
/// in [`crate::stream::JsonlServer::serve`], after the reports preceding
/// the error were written.
pub fn dispatch_fleet<R: BufRead>(
    input: R,
    out_path: &Path,
    checkpoint_path: Option<&Path>,
    cfg: &DispatchConfig,
    shutdown: Option<&AtomicBool>,
    remote: Option<RemoteHub>,
) -> io::Result<DispatchOutcome> {
    if cfg.worker_cmd.is_empty() && cfg.workers > 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "dispatch needs a non-empty worker command (or workers = 0 with --listen)",
        ));
    }
    if cfg.workers == 0 && remote.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "dispatch with zero local workers needs a remote listener",
        ));
    }
    if cfg.shard_size == 0 || cfg.max_attempts == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "dispatch needs shard_size ≥ 1, max_attempts ≥ 1",
        ));
    }
    let started = Instant::now();
    let mut source = ShardSource::new(input);
    let mut merged = StreamStats {
        shard_size: cfg.shard_size,
        ..StreamStats::default()
    };
    let mut coord = Coordinator::new(cfg);
    if let Some(path) = cfg.cache_path.as_deref() {
        let (store, entries, _stats) = CacheStore::open(path, cfg.config_fp)?;
        let map = entries
            .into_iter()
            .map(|e| (e.fingerprint, e.payload))
            .collect();
        coord.cache = Some(CacheAuthority { store, map });
    }
    let mut next_emit = 0usize;
    let mut emitted_bytes = 0u64;
    let mut shards_resumed = 0usize;
    let mut outcome_error: Option<CorpusError> = None;
    let mut source_done = false;

    // --- remote acceptor --------------------------------------------------
    let hub_stop = Arc::new(AtomicBool::new(false));
    let acceptor = remote.map(|hub| {
        crate::remote::spawn_acceptor(hub, coord.tx.clone(), cfg.config_fp, Arc::clone(&hub_stop))
    });

    // --- resume / journal setup -------------------------------------------
    let header = CheckpointHeader {
        config_fp: cfg.config_fp,
        shard_size: cfg.shard_size,
    };
    let invalid = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
    let mut ckpt_log = None;
    if let Some(path) = checkpoint_path {
        match checkpoint::load(path)? {
            None => {
                ckpt_log = Some(CheckpointLog::create(path, header)?);
            }
            Some(loaded) => {
                if loaded.header != header {
                    return Err(invalid(format!(
                        "{}: checkpoint belongs to a different run \
                         (config_fp {:#x}/shard_size {} recorded, {:#x}/{} requested)",
                        path.display(),
                        loaded.header.config_fp,
                        loaded.header.shard_size,
                        header.config_fp,
                        header.shard_size,
                    )));
                }
                for rec in &loaded.records {
                    let shard = source
                        .next_shard(cfg.shard_size)
                        .map_err(|e| invalid(format!("re-reading corpus for resume: {e}")))?
                        .ok_or_else(|| {
                            invalid(format!(
                                "{}: checkpoint records shard {} but the corpus ended",
                                path.display(),
                                rec.shard
                            ))
                        })?;
                    if shard.fp != rec.shard_fp || shard.lines.len() != rec.lines {
                        return Err(invalid(format!(
                            "{}: corpus changed since the checkpoint (shard {} fingerprint mismatch)",
                            path.display(),
                            rec.shard
                        )));
                    }
                    rec.stats.merge_into(&mut merged);
                    if rec.quarantined {
                        coord.quarantined.push(QuarantinedShard {
                            shard: rec.shard,
                            attempts: rec.attempts,
                            worker: None,
                            message: "quarantined in a previous run".into(),
                        });
                    } else {
                        merged.shards += 1;
                    }
                    registry().dispatch_shards_resumed_total.inc();
                }
                shards_resumed = loaded.records.len();
                next_emit = shards_resumed;
                emitted_bytes = loaded.out_bytes();
                ckpt_log = Some(CheckpointLog::open_append(path)?);
            }
        }
    }

    // --- output file ------------------------------------------------------
    let out_file = if emitted_bytes > 0 {
        let mut f = OpenOptions::new().read(true).write(true).open(out_path)?;
        let len = f.metadata()?.len();
        if len < emitted_bytes {
            return Err(invalid(format!(
                "{}: output file is shorter ({len} bytes) than the checkpoint \
                 records ({emitted_bytes} bytes)",
                out_path.display()
            )));
        }
        // Reports of shards past the last durable record are discarded.
        f.set_len(emitted_bytes)?;
        f.seek(SeekFrom::End(0))?;
        f
    } else {
        File::create(out_path)?
    };
    let mut out = BufWriter::new(out_file);

    // --- main loop --------------------------------------------------------
    let mut interrupted = false;
    if let Some(stop) = cfg.stop_after_shards {
        if next_emit >= stop {
            interrupted = true;
        }
    }
    let mut error_shard: Option<usize> = None;
    'run: loop {
        if !interrupted && shutdown.is_some_and(|s| s.load(Ordering::Relaxed)) {
            interrupted = true;
        }
        // Assign work while there is work and worker capacity.
        while !interrupted && error_shard.is_none() {
            let now = Instant::now();
            let retry_pos = coord.retries.iter().position(|r| r.not_before <= now);
            let have_source = !source_done;
            if retry_pos.is_none() && !have_source {
                break;
            }
            // Find or grow an idle worker first — a shard is only taken
            // from the source once somewhere to run it exists.
            let pos = match coord.idle_worker() {
                Some(pos) => pos,
                None if coord.workers.len() < cfg.workers => {
                    coord.spawn_worker()?;
                    coord.workers.len() - 1
                }
                None => {
                    // No runner yet (a remote-only fleet waiting for workers
                    // to dial in). Probe the source once anyway so an already
                    // exhausted corpus terminates instead of waiting for a
                    // worker that will never come; at most one shard is read
                    // ahead and parked in the retry queue until a worker
                    // joins.
                    if retry_pos.is_none() && have_source {
                        match source.next_shard(cfg.shard_size) {
                            Ok(Some(shard)) => {
                                let index = coord.track(shard);
                                coord.retries.push(Retry {
                                    index,
                                    not_before: now,
                                });
                            }
                            Ok(None) => source_done = true,
                            Err(e) => {
                                error_shard = Some(source.next_index);
                                outcome_error = Some(e);
                                source_done = true;
                            }
                        }
                    }
                    break;
                }
            };
            if let Some(rpos) = retry_pos {
                let retry = coord.retries.remove(rpos);
                coord.assign(pos, retry.index);
                continue;
            }
            match source.next_shard(cfg.shard_size) {
                Ok(Some(shard)) => {
                    let index = coord.track(shard);
                    coord.assign(pos, index);
                }
                Ok(None) => source_done = true,
                Err(e) => {
                    // The corpus itself is unreadable: the stream ends at
                    // the shard this read would have produced.
                    error_shard = Some(source.next_index);
                    outcome_error = Some(e);
                    source_done = true;
                }
            }
        }
        if !interrupted && error_shard.is_none() {
            coord.maybe_hedge();
        }

        // Emit the contiguous completed prefix.
        while let Some(done) = coord.completed.remove(&next_emit) {
            out.write_all(&done.bytes)?;
            emitted_bytes += done.bytes.len() as u64;
            registry().dispatch_shards_total.inc();
            if let Some(err) = done.error {
                // Decode error: the prefix reports are written, nothing
                // after this shard may be emitted, and the shard is *not*
                // journaled (a resume retries it and fails the same way).
                outcome_error = Some(err);
                break 'run;
            }
            if !done.quarantined {
                done.stats.merge_into(&mut merged);
                merged.shards += 1;
            }
            if let Some(log) = ckpt_log.as_mut() {
                // Durability order: report bytes first, then the record
                // that vouches for them.
                out.flush()?;
                out.get_ref().sync_data()?;
                log.append(&ShardRecord {
                    shard: next_emit,
                    lines: done.lines,
                    shard_fp: done.fp,
                    out_bytes: emitted_bytes,
                    attempts: done.attempts,
                    quarantined: done.quarantined,
                    stats: done.stats,
                })?;
            }
            next_emit += 1;
            if cfg.stop_after_shards.is_some_and(|stop| next_emit >= stop) {
                interrupted = true;
            }
        }

        // Termination: nothing running, nothing queued, nothing to come.
        let busy = coord.busy();
        let retry_pending = !coord.retries.is_empty();
        if error_shard.is_some_and(|e| next_emit >= e) {
            break;
        }
        if interrupted && !busy {
            break;
        }
        if !busy && !retry_pending && source_done && coord.completed.is_empty() {
            break;
        }
        if error_shard.is_some() && !busy && !retry_pending {
            // Everything before the error shard that can complete has;
            // the error shard itself was emitted above if it exists.
            break;
        }

        // Wait for the next event or deadline.
        match coord.rx.recv_timeout(coord.next_deadline()) {
            Ok(msg) => {
                coord.handle_msg(msg);
                // Drain whatever else is already queued before looping.
                while let Ok(msg) = coord.rx.try_recv() {
                    coord.handle_msg(msg);
                }
            }
            Err(RecvTimeoutError::Timeout) => coord.enforce_deadlines(),
            Err(RecvTimeoutError::Disconnected) => unreachable!("coordinator holds a sender"),
        }
    }

    out.flush()?;
    hub_stop.store(true, Ordering::Relaxed);
    coord.shutdown_fleet();
    if let Some(acceptor) = acceptor {
        let _ = acceptor.join();
    }
    coord.quarantined.sort_by_key(|q| q.shard);
    merged.wall_micros = started.elapsed().as_micros() as u64;
    Ok(DispatchOutcome {
        stats: merged,
        shards_total: next_emit,
        shards_resumed,
        retries: coord.retry_count,
        workers_spawned: coord.spawned,
        remote_workers: coord.remote_workers,
        reconnects: coord.reconnects,
        lease_expiries: coord.lease_expiries,
        hedges_launched: coord.hedges,
        hedges_won: coord.hedge_wins,
        hedges_wasted: coord.hedge_wasted,
        stale_drops: coord.stale_drops,
        fleet_cache_hits: coord.fleet_cache_hits,
        stale_fills_dropped: coord.stale_fills_dropped,
        quarantined: coord.quarantined,
        interrupted,
        error: outcome_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_grammar() {
        let f = FaultSpec::parse("crash:shard=3").unwrap();
        assert_eq!(f.kind, FaultKind::Crash);
        assert!(f.fires(3, 1, None));
        assert!(!f.fires(3, 2, None)); // default attempts=1: retry succeeds
        assert!(!f.fires(2, 1, None));

        let f = FaultSpec::parse("hang:shard=0,worker=2,attempts=4").unwrap();
        assert_eq!(f.kind, FaultKind::Hang);
        assert!(f.fires(0, 4, Some(2)));
        assert!(!f.fires(0, 5, Some(2)));
        assert!(!f.fires(0, 1, Some(1)));
        assert!(!f.fires(0, 1, None));

        let f = FaultSpec::parse("stall:shard=1,ms=1500").unwrap();
        assert_eq!(f.kind, FaultKind::Stall);
        assert_eq!(f.ms, 1500);
        let f = FaultSpec::parse("slow:shard=2").unwrap();
        assert_eq!(f.kind, FaultKind::Slow);
        assert_eq!(f.ms, 1000); // default duration

        assert!(FaultSpec::parse("garble:shard=1").is_some());
        assert!(FaultSpec::parse("partial:shard=1").is_some());
        assert!(FaultSpec::parse("disconnect:shard=1").is_some());
        assert!(FaultSpec::parse("dup-done:shard=1").is_some());
        assert!(FaultSpec::parse("explode:shard=1").is_none());
        assert!(FaultSpec::parse("crash").is_none());
        assert!(FaultSpec::parse("crash:worker=1").is_none()); // shard required
        assert!(FaultSpec::parse("crash:shard=x").is_none());
        assert!(FaultSpec::parse("stall:shard=1,ms=x").is_none());

        // Cache-plane kinds: store mutations don't need a shard, the
        // stale fill (a worker-side behavior) still does.
        let f = FaultSpec::parse("cache-torn:at=64").unwrap();
        assert_eq!(f.kind, FaultKind::CacheTorn);
        assert_eq!(f.cache_fault(), Some(CacheFault::Torn { at: 64 }));
        let f = FaultSpec::parse("cache-flip:record=2").unwrap();
        assert_eq!(f.kind, FaultKind::CacheFlip);
        assert_eq!(f.cache_fault(), Some(CacheFault::Flip { record: 2 }));
        let f = FaultSpec::parse("cache-stale-fill:shard=1,ms=500").unwrap();
        assert_eq!(f.kind, FaultKind::CacheStaleFill);
        assert_eq!(f.ms, 500);
        assert!(f.cache_fault().is_none());
        assert!(f.fires(1, 1, None));
        assert!(FaultSpec::parse("cache-stale-fill").is_none()); // shard required
        assert!(FaultSpec::parse("cache-torn:at=x").is_none());
    }

    #[test]
    fn shard_header_round_trip() {
        assert_eq!(
            parse_shard_header("#shard 7 2 128"),
            Some((7, 2, 128, false))
        );
        assert_eq!(
            parse_shard_header("#shard 7 2 128 cache"),
            Some((7, 2, 128, true))
        );
        assert_eq!(parse_shard_header("#shard 7 2"), None);
        assert_eq!(parse_shard_header("#shard 7 2 128 9"), None);
        assert_eq!(parse_shard_header("#shard 7 2 128 cache x"), None);
        assert_eq!(parse_shard_header("#run"), None);
    }

    #[test]
    fn shard_source_boundaries_match_batch_semantics() {
        let corpus = "# comment\n\
                      {\"machines\":1}\n\
                      \n\
                      {\"machines\":2}\n\
                      {\"machines\":3}\n";
        let mut src = ShardSource::new(corpus.as_bytes());
        let s0 = src.next_shard(2).unwrap().unwrap();
        assert_eq!(s0.index, 0);
        assert_eq!(s0.lines, vec!["{\"machines\":1}", "{\"machines\":2}"]);
        assert_eq!(s0.line_nos, vec![2, 4]);
        let s1 = src.next_shard(2).unwrap().unwrap();
        assert_eq!(s1.index, 1);
        assert_eq!(s1.line_nos, vec![5]);
        assert!(src.next_shard(2).unwrap().is_none());
        // Fingerprints depend only on the meaningful line text.
        let mut src2 = ShardSource::new("{\"machines\":1}\n# x\n{\"machines\":2}\n".as_bytes());
        let t0 = src2.next_shard(2).unwrap().unwrap();
        assert_eq!(t0.fp, s0.fp);
    }

    #[test]
    fn corpus_error_payload_round_trips() {
        let cases = [
            CorpusError::Json {
                line: 9,
                error: JsonError {
                    at: 4,
                    reason: "expected digit".into(),
                },
            },
            CorpusError::Malformed {
                line: 9,
                reason: "machines must be ≥ 1".into(),
            },
            CorpusError::Io {
                line: 9,
                message: "pipe broke".into(),
            },
        ];
        for e in cases {
            let json = corpus_error_json(3, 2, Some(1), &e);
            // The attribution fields ride along for the merged stream.
            assert_eq!(json.get("attempt").and_then(Json::as_usize), Some(2));
            assert_eq!(json.get("worker").and_then(Json::as_usize), Some(1));
            let back = corpus_error_from_json(&json, 9).unwrap();
            assert_eq!(format!("{back}"), format!("{e}"));
        }
        // Worker ordinal is optional (e.g. a bare `msrs worker` run).
        let json = corpus_error_json(
            3,
            1,
            None,
            &CorpusError::Malformed {
                line: 1,
                reason: "x".into(),
            },
        );
        assert!(json.get("worker").is_none());
    }
}
