//! Remote TCP workers for `msrs dispatch`: the coordinator's listener +
//! handshake acceptor, and the `msrs worker --connect` client loop.
//!
//! The shard protocol itself is transport-agnostic ([`mod@crate::dispatch`]
//! module docs); this module adds the connection layer:
//!
//! ## Handshake
//!
//! ```text
//! worker      → #hello {"proto":1,"config_fp":N,"reconnects":R}
//! coordinator → #welcome {"proto":1,"worker":<ordinal>}
//!            or #reject {"error":"handshake_rejected","reason":…,
//!                        "proto":…,"config_fp":…}   (then close)
//! ```
//!
//! The protocol version and the engine-config content fingerprint
//! ([`crate::EngineConfig::content_fingerprint`]) must both match — a
//! worker built against different engine semantics would silently
//! produce different reports, so mismatches are refused with a
//! structured error and the worker exits non-zero without retrying.
//! `reconnects` is the worker's count of *prior completed sessions*, so
//! the coordinator can tell a rejoining worker from a fresh one.
//!
//! ## Reconnection
//!
//! A remote worker whose socket drops without a `#shutdown` line assumes
//! the coordinator restarted and redials with bounded exponential
//! backoff ([`RemoteWorkerConfig::reconnect_base`], doubling up to
//! `reconnect_cap`, at most `reconnect_attempts` consecutive failures).
//! A clean `#shutdown` ends the worker without redialing.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use msrs_telemetry::registry;

use crate::dispatch::{run_worker_conn, Msg, WorkerExit};
use crate::json::Json;
use crate::Engine;

/// Version of the dispatch wire protocol spoken after the handshake.
/// Bump on any incompatible change to the `#shard`/`#done` framing.
/// Version 2 added the fleet cache plane (`#shard … cache` headers and
/// the `#cacheq`/`#cachehit`/`#cachemiss`/`#cachefill` exchange).
pub const REMOTE_PROTO_VERSION: u64 = 2;

/// How long the coordinator waits for a dialing worker's `#hello` (and a
/// worker for the coordinator's reply) before giving up on the socket.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Accept-loop poll period while the listener is non-blocking.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Longest line the handshake will read before declaring the peer
/// non-protocol.
const MAX_HANDSHAKE_LINE: usize = 4096;

/// A bound listener remote workers can dial into, handed to
/// [`crate::dispatch::dispatch_fleet`].
pub struct RemoteHub {
    listener: TcpListener,
    local: SocketAddr,
}

impl RemoteHub {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port).
    pub fn bind(addr: &str) -> io::Result<RemoteHub> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(RemoteHub { listener, local })
    }

    /// The actually-bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

/// Runs the accept loop on its own thread until `stop` is set: each
/// connection gets a short-lived handshake thread that either forwards
/// the stream to the coordinator as [`Msg::RemoteJoined`] or refuses it
/// with a structured `#reject` line.
pub(crate) fn spawn_acceptor(
    hub: RemoteHub,
    tx: Sender<Msg>,
    config_fp: u64,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        if hub.listener.set_nonblocking(true).is_err() {
            return;
        }
        while !stop.load(Ordering::Relaxed) {
            match hub.listener.accept() {
                Ok((stream, _peer)) => {
                    let tx = tx.clone();
                    std::thread::spawn(move || handshake_accept(stream, &tx, config_fp));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    })
}

/// Validates one dialing worker's `#hello`. On success the stream (with
/// no buffered bytes — the handshake reads unbuffered) is forwarded to
/// the coordinator, which sends the `#welcome`.
fn handshake_accept(mut stream: TcpStream, tx: &Sender<Msg>, config_fp: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let reject = |stream: &mut TcpStream, reason: &str| {
        registry().dispatch_handshake_rejects_total.inc();
        let line = Json::Obj(vec![
            ("error".into(), Json::Str("handshake_rejected".into())),
            ("reason".into(), Json::Str(reason.into())),
            ("proto".into(), Json::Num(REMOTE_PROTO_VERSION as i128)),
            ("config_fp".into(), Json::Num(config_fp as i128)),
        ]);
        let _ = stream.write_all(format!("#reject {line}\n").as_bytes());
        let _ = stream.flush();
        let _ = stream.shutdown(Shutdown::Both);
    };
    let line = match read_line_raw(&mut stream, MAX_HANDSHAKE_LINE) {
        Ok(line) => line,
        Err(_) => {
            reject(&mut stream, "no #hello line before the handshake deadline");
            return;
        }
    };
    let Some(hello) = line
        .strip_prefix("#hello ")
        .and_then(|payload| Json::parse(payload).ok())
    else {
        reject(&mut stream, "first line was not a #hello");
        return;
    };
    let proto = hello.get("proto").and_then(Json::as_u64);
    if proto != Some(REMOTE_PROTO_VERSION) {
        reject(
            &mut stream,
            &format!(
                "protocol version mismatch (worker {}, coordinator {})",
                proto.map_or("?".into(), |p| p.to_string()),
                REMOTE_PROTO_VERSION
            ),
        );
        return;
    }
    let fp = hello.get("config_fp").and_then(Json::as_u64);
    if fp != Some(config_fp) {
        reject(
            &mut stream,
            &format!(
                "engine config fingerprint mismatch (worker {}, coordinator {config_fp})",
                fp.map_or("?".into(), |f| f.to_string()),
            ),
        );
        return;
    }
    let reconnects = hello.get("reconnects").and_then(Json::as_u64).unwrap_or(0);
    let _ = stream.set_read_timeout(None);
    // The coordinator thread registers the worker and sends #welcome;
    // a send failure means the run already ended.
    let _ = tx.send(Msg::RemoteJoined { stream, reconnects });
}

/// Reads one `\n`-terminated line *without buffering past it*, so the
/// stream can be handed to another reader afterwards. Handshake lines
/// are tiny; byte-at-a-time is fine.
fn read_line_raw(stream: &mut TcpStream, max: usize) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                ))
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    let text = String::from_utf8_lossy(&line).into_owned();
                    return Ok(text.trim_end_matches('\r').to_string());
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "handshake line too long",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Configuration for one `msrs worker --connect` process.
#[derive(Debug, Clone)]
pub struct RemoteWorkerConfig {
    /// Coordinator address (`HOST:PORT`).
    pub addr: String,
    /// Heartbeat period ([`crate::dispatch::DEFAULT_HEARTBEAT`]).
    pub heartbeat: Duration,
    /// This worker's engine-config content fingerprint, offered in the
    /// handshake and checked by the coordinator.
    pub config_fp: u64,
    /// First reconnect backoff; doubles per consecutive failure.
    pub reconnect_base: Duration,
    /// Backoff ceiling.
    pub reconnect_cap: Duration,
    /// Consecutive dial/handshake failures tolerated before giving up.
    pub reconnect_attempts: u32,
    /// Threads for burst-decoding shard lines (1 = sequential).
    pub decode_threads: usize,
}

impl Default for RemoteWorkerConfig {
    fn default() -> Self {
        RemoteWorkerConfig {
            addr: String::new(),
            heartbeat: crate::dispatch::DEFAULT_HEARTBEAT,
            config_fp: 0,
            reconnect_base: Duration::from_millis(200),
            reconnect_cap: Duration::from_secs(5),
            reconnect_attempts: 8,
            decode_threads: 1,
        }
    }
}

/// Bounded exponential backoff: `base × 2^(failures-1)`, capped.
fn backoff_delay(base: Duration, cap: Duration, failures: u32) -> Duration {
    let factor = 1u32 << failures.saturating_sub(1).min(6);
    (base * factor).min(cap)
}

/// The `msrs worker --connect` loop: dial, handshake, run the shard
/// protocol until the coordinator says `#shutdown` (clean exit) or the
/// socket drops (redial with backoff — the coordinator may have
/// restarted). Returns `Err` on a handshake rejection (version or
/// config mismatch — permanent, no retry) or when the reconnect budget
/// is exhausted.
pub fn run_remote_worker(engine: &Engine, cfg: &RemoteWorkerConfig) -> io::Result<()> {
    let env_index: Option<u64> = std::env::var("MSRS_WORKER_INDEX")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut sessions: u64 = 0;
    let mut failures: u32 = 0;
    loop {
        match dial_and_handshake(cfg, sessions) {
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Structured rejection: retrying can't help.
                return Err(e);
            }
            Err(e) => {
                failures += 1;
                if failures > cfg.reconnect_attempts {
                    return Err(io::Error::new(
                        e.kind(),
                        format!(
                            "giving up on {} after {failures} connection attempts: {e}",
                            cfg.addr
                        ),
                    ));
                }
                let delay = backoff_delay(cfg.reconnect_base, cfg.reconnect_cap, failures);
                eprintln!(
                    "msrs worker: connect to {} failed ({e}); retrying in {} ms",
                    cfg.addr,
                    delay.as_millis()
                );
                std::thread::sleep(delay);
            }
            Ok((stream, ordinal)) => {
                failures = 0;
                let reader = io::BufReader::new(stream.try_clone()?);
                let exit = run_worker_conn(
                    engine,
                    reader,
                    stream,
                    cfg.heartbeat,
                    env_index.or(Some(ordinal)),
                    cfg.decode_threads,
                )?;
                sessions += 1;
                match exit {
                    WorkerExit::Shutdown => return Ok(()),
                    WorkerExit::Eof => {
                        // Bare EOF: assume a coordinator restart and
                        // redial after a beat.
                        std::thread::sleep(cfg.reconnect_base);
                    }
                }
            }
        }
    }
}

/// One dial + handshake round trip; returns the connected stream and
/// the ordinal the coordinator assigned in its `#welcome`.
fn dial_and_handshake(cfg: &RemoteWorkerConfig, sessions: u64) -> io::Result<(TcpStream, u64)> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    let _ = stream.set_nodelay(true);
    let hello = format!(
        "#hello {{\"proto\":{REMOTE_PROTO_VERSION},\"config_fp\":{},\"reconnects\":{sessions}}}\n",
        cfg.config_fp
    );
    stream.write_all(hello.as_bytes())?;
    stream.flush()?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let line = read_line_raw(&mut stream, MAX_HANDSHAKE_LINE)?;
    stream.set_read_timeout(None)?;
    if let Some(payload) = line.strip_prefix("#welcome ") {
        let v = Json::parse(payload).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparsable #welcome: {e}"),
            )
        })?;
        if v.get("proto").and_then(Json::as_u64) != Some(REMOTE_PROTO_VERSION) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "coordinator #welcome carries a different protocol version",
            ));
        }
        let ordinal = v.get("worker").and_then(Json::as_u64).unwrap_or(0);
        Ok((stream, ordinal))
    } else if let Some(payload) = line.strip_prefix("#reject ") {
        let reason = Json::parse(payload)
            .ok()
            .and_then(|v| v.get("reason").and_then(|r| r.as_str().map(String::from)))
            .unwrap_or_else(|| payload.to_string());
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("coordinator rejected handshake: {reason}"),
        ))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected handshake reply `{line}`"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_exponential() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(2);
        assert_eq!(backoff_delay(base, cap, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, cap, 2), Duration::from_millis(200));
        assert_eq!(backoff_delay(base, cap, 3), Duration::from_millis(400));
        assert_eq!(backoff_delay(base, cap, 6), cap); // 3200 ms, capped
        assert_eq!(backoff_delay(base, cap, 40), cap); // shift stays sane
    }
}
