//! JSON-lines corpus I/O: one instance (or report) per line.
//!
//! Instance lines look like
//!
//! ```json
//! {"id":"uniform-0","machines":3,"classes":[[4,3],[5],[2,2,2]]}
//! ```
//!
//! mirroring [`msrs_core::io`]'s text format (`classes[c]` lists the job
//! sizes of class `c`; job ids are assigned class by class in order, exactly
//! as [`Instance::from_classes`]). Blank lines and `#`-prefixed lines are
//! ignored. Report lines are produced by
//! [`SolveReport::to_json`](crate::report::SolveReport::to_json).
//!
//! ## The streaming decoder
//!
//! [`LineDecoder`] parses an instance line **directly into reusable
//! buffers** — a [`msrs_core::InstanceBuilder`] for the flat class data and
//! a byte buffer for the id — without building a [`Json`] tree: after
//! warm-up, decoding a line performs zero heap allocations. It validates
//! the full line (syntax *and* instance invariants) with the same error
//! classification as the tree-based parser did: JSON syntax problems win
//! over semantic ones, and semantic checks fire in field order (`machines`,
//! then `classes`, then instance construction). [`read_instance_line`] is a
//! convenience wrapper that decodes one line into an owned
//! [`SolveRequest`].

use std::fmt;

use msrs_core::{Instance, InstanceBuilder, Time};

use crate::json::{Json, JsonError};
use crate::report::SolveRequest;

/// Errors reading an instance corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A line failed to parse as JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// Underlying JSON error.
        error: JsonError,
    },
    /// A line parsed but did not describe a valid instance.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
    /// The underlying reader failed (streaming input only).
    Io {
        /// 1-based number of the line being read when the error occurred.
        line: usize,
        /// Description of the I/O error.
        message: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Json { line, error } => write!(f, "line {line}: {error}"),
            CorpusError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            CorpusError::Io { line, message } => write!(f, "line {line}: I/O error: {message}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Serializes one instance (with an optional id) as a JSON line.
pub fn write_instance_line(id: Option<&str>, inst: &Instance) -> String {
    let mut obj = Vec::new();
    if let Some(id) = id {
        obj.push(("id".into(), Json::Str(id.into())));
    }
    obj.push(("machines".into(), Json::Num(inst.machines() as i128)));
    let classes: Vec<Json> = (0..inst.num_classes())
        .map(|c| {
            Json::Arr(
                inst.class_sizes(c)
                    .iter()
                    .map(|&p| Json::Num(p as i128))
                    .collect(),
            )
        })
        .collect();
    obj.push(("classes".into(), Json::Arr(classes)));
    Json::Obj(obj).to_string()
}

/// The first semantic problem found while scanning a line (reported only
/// after the whole line proved syntactically valid, mirroring the tree
/// parser's "parse everything, then extract" order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Semantic {
    BadMachines,
    BadClasses,
    EntryNotArray,
    BadSize,
}

impl Semantic {
    fn reason(self) -> &'static str {
        match self {
            Semantic::BadMachines => "missing or invalid `machines`",
            Semantic::BadClasses => "missing or invalid `classes`",
            Semantic::EntryNotArray => "`classes` entries must be arrays",
            Semantic::BadSize => "job sizes must be non-negative integers",
        }
    }
}

/// A reusable instance-line decoder: parses
/// `{"id":…,"machines":…,"classes":[[…]]}` straight into a retained
/// [`InstanceBuilder`] and id buffer. Steady-state decoding allocates
/// nothing; only [`LineDecoder::build_request`] (the cache-miss path)
/// materializes owned data.
#[derive(Debug, Default)]
pub struct LineDecoder {
    builder: InstanceBuilder,
    id_buf: Vec<u8>,
    /// Reusable unescaped-key buffer: schema keys are matched on their
    /// *decoded* spelling (`"machines"` is `"machines"`), exactly as
    /// the tree parser's `get()` did.
    key_buf: Vec<u8>,
    has_id: bool,
}

impl LineDecoder {
    /// A fresh decoder (buffers grow on first use, then persist).
    pub fn new() -> Self {
        LineDecoder::default()
    }

    /// Decodes one instance line. On `Ok`, the [`builder`](Self::builder)
    /// holds the instance's flat class data (already checked against the
    /// [`Instance`] construction invariants) and [`id`](Self::id) the
    /// optional request id.
    pub fn decode(&mut self, line_no: usize, line: &str) -> Result<(), CorpusError> {
        self.id_buf.clear();
        self.has_id = false;
        self.builder.reset(0);
        let mut p = Scan {
            bytes: line.as_bytes(),
            pos: 0,
        };
        let mut machines: Option<usize> = None;
        let mut seen_id = false;
        let mut seen_machines = false;
        let mut seen_classes = false;
        let mut classes_ok = false;
        let mut semantic: Option<Semantic> = None;

        let to_json_err = |error: JsonError| CorpusError::Json {
            line: line_no,
            error,
        };
        let malformed = |reason: String| CorpusError::Malformed {
            line: line_no,
            reason,
        };

        p.skip_ws();
        if p.peek() != Some(b'{') {
            // Any other *valid* JSON document is handled like the tree
            // parser handled it: parse fine, then fail field extraction.
            p.skip_value().map_err(to_json_err)?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(to_json_err(p.err("trailing characters after JSON value")));
            }
            return Err(malformed(Semantic::BadMachines.reason().into()));
        }
        p.pos += 1;
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.skip_ws();
                // Keys are matched on their *unescaped* spelling (decoded
                // into a reusable buffer), matching the tree parser — an
                // escaped `"machines"` is still the `machines` key.
                p.string_into(&mut self.key_buf).map_err(to_json_err)?;
                p.skip_ws();
                p.expect(b':').map_err(to_json_err)?;
                p.skip_ws();
                // Copy the discriminant out so the key buffer's borrow does
                // not overlap the `&mut self` uses inside the arms.
                #[derive(PartialEq)]
                enum Key {
                    Id,
                    Machines,
                    Classes,
                    Other,
                }
                let key = match self.key_buf.as_slice() {
                    b"id" => Key::Id,
                    b"machines" => Key::Machines,
                    b"classes" => Key::Classes,
                    _ => Key::Other,
                };
                match key {
                    Key::Id if !seen_id => {
                        seen_id = true;
                        if p.peek() == Some(b'"') {
                            p.string_into(&mut self.id_buf).map_err(to_json_err)?;
                            self.has_id = true;
                        } else {
                            p.skip_value().map_err(to_json_err)?;
                        }
                    }
                    Key::Machines if !seen_machines => {
                        seen_machines = true;
                        if matches!(p.peek(), Some(b'-' | b'0'..=b'9')) {
                            let n = p.number().map_err(to_json_err)?;
                            machines = usize::try_from(n).ok();
                        } else {
                            p.skip_value().map_err(to_json_err)?;
                        }
                        if machines.is_none() {
                            note(&mut semantic, Semantic::BadMachines);
                        }
                    }
                    Key::Classes if !seen_classes => {
                        seen_classes = true;
                        if p.peek() == Some(b'[') {
                            classes_ok = true;
                            self.scan_classes(&mut p, &mut semantic)
                                .map_err(to_json_err)?;
                        } else {
                            p.skip_value().map_err(to_json_err)?;
                            note(&mut semantic, Semantic::BadClasses);
                        }
                    }
                    _ => {
                        p.skip_value().map_err(to_json_err)?;
                    }
                }
                p.skip_ws();
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b'}') => {
                        p.pos += 1;
                        break;
                    }
                    _ => return Err(to_json_err(p.err("expected `,` or `}`"))),
                }
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(to_json_err(p.err("trailing characters after JSON value")));
        }

        // Syntax was fine; now surface semantic problems in the tree
        // parser's extraction order.
        if semantic == Some(Semantic::BadMachines) || machines.is_none() {
            return Err(malformed(Semantic::BadMachines.reason().into()));
        }
        if !classes_ok {
            return Err(malformed(Semantic::BadClasses.reason().into()));
        }
        if let Some(s) = semantic {
            return Err(malformed(s.reason().into()));
        }
        self.builder.set_machines(machines.expect("checked above"));
        self.builder
            .validate()
            .map_err(|e| malformed(e.to_string()))
    }

    /// Parses the `classes` array (cursor on `[`) into the builder,
    /// recording — but not bailing on — semantic problems so the rest of
    /// the line is still syntax-checked.
    fn scan_classes(
        &mut self,
        p: &mut Scan<'_>,
        semantic: &mut Option<Semantic>,
    ) -> Result<(), JsonError> {
        p.pos += 1; // consume '['
        p.skip_ws();
        if p.peek() == Some(b']') {
            p.pos += 1;
            return Ok(());
        }
        loop {
            p.skip_ws();
            if p.peek() == Some(b'[') {
                p.pos += 1;
                self.builder.begin_class();
                p.skip_ws();
                if p.peek() == Some(b']') {
                    p.pos += 1;
                } else {
                    loop {
                        p.skip_ws();
                        if matches!(p.peek(), Some(b'-' | b'0'..=b'9')) {
                            let n = p.number()?;
                            match u64::try_from(n) {
                                Ok(size) => self.builder.push_size(size as Time),
                                Err(_) => note(semantic, Semantic::BadSize),
                            }
                        } else {
                            p.skip_value()?;
                            note(semantic, Semantic::BadSize);
                        }
                        p.skip_ws();
                        match p.peek() {
                            Some(b',') => p.pos += 1,
                            Some(b']') => {
                                p.pos += 1;
                                break;
                            }
                            _ => return Err(p.err("expected `,` or `]`")),
                        }
                    }
                }
            } else {
                p.skip_value()?;
                note(semantic, Semantic::EntryNotArray);
            }
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b']') => {
                    p.pos += 1;
                    return Ok(());
                }
                _ => return Err(p.err("expected `,` or `]`")),
            }
        }
    }

    /// The decoded flat instance data of the last successful
    /// [`decode`](Self::decode).
    pub fn builder(&self) -> &InstanceBuilder {
        &self.builder
    }

    /// The decoded (unescaped) id bytes — always valid UTF-8 — if the line
    /// carried a string `id`.
    pub fn id(&self) -> Option<&[u8]> {
        self.has_id.then_some(self.id_buf.as_slice())
    }

    /// [`LineDecoder::id`] as `&str`.
    pub fn id_str(&self) -> Option<&str> {
        self.id()
            .map(|b| std::str::from_utf8(b).expect("decoder emits UTF-8"))
    }

    /// Materializes an owned [`SolveRequest`] from the decoded line (the
    /// cache-miss path; this is where the allocations happen).
    pub fn build_request(&self) -> SolveRequest {
        SolveRequest {
            id: self.id_str().map(str::to_owned),
            instance: self.builder.build().expect("decode validated the instance"),
        }
    }
}

/// Records the first semantic problem of a line (later ones are masked,
/// matching the tree parser's first-error extraction order).
fn note(slot: &mut Option<Semantic>, what: Semantic) {
    if slot.is_none() {
        *slot = Some(what);
    }
}

/// A validating scanner over one line: the same grammar (and the same error
/// offsets/messages) as [`Json::parse`], but nothing is materialized —
/// values are either skipped or written into caller buffers. NOTE: this is
/// deliberately a twin of `crate::json`'s `Parser` lexing rules (numbers,
/// escapes, surrogates); keep the two in sync — the differential tests
/// below compare both decoders against each other line by line.
struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    /// Validates and skips one JSON value of any shape.
    fn skip_value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null"),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'"') => self.string_skip(),
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.skip_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.string_skip()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    self.skip_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number().map(|_| ()),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Parses an integer literal with the same restrictions as the tree
    /// parser (no floats, no leading zeros, i128 range).
    fn number(&mut self) -> Result<i128, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        // RFC 8259: no leading zeros ("-0" and "0" are fine, "007" is not).
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zeros are not allowed"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not supported"));
        }
        let digits = &self.bytes[digits_start..self.pos];
        // Fast path for the overwhelmingly common case — short non-negative
        // literals (job sizes, machine counts): accumulate in `u64`, which
        // 18 digits can never overflow. Long or negative literals take the
        // generic checked path.
        if digits.len() <= 18 && self.bytes[start] != b'-' {
            let mut value: u64 = 0;
            for &b in digits {
                value = value * 10 + u64::from(b - b'0');
            }
            return Ok(value as i128);
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<i128>()
            .map_err(|_| self.err(format!("integer out of range `{text}`")))
    }

    /// Reads 4 hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, JsonError> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))
    }

    /// Validates a string, discarding its content.
    fn string_skip(&mut self) -> Result<(), JsonError> {
        self.string_impl(&mut None)
    }

    /// Validates a string, writing the unescaped UTF-8 bytes into `out`
    /// (cleared first).
    fn string_into(&mut self, out: &mut Vec<u8>) -> Result<(), JsonError> {
        out.clear();
        let mut sink = Some(out);
        self.string_impl(&mut sink)
    }

    fn string_impl(&mut self, out: &mut Option<&mut Vec<u8>>) -> Result<(), JsonError> {
        let push_char = |out: &mut Option<&mut Vec<u8>>, ch: char| {
            if let Some(buf) = out {
                let mut utf8 = [0u8; 4];
                buf.extend_from_slice(ch.encode_utf8(&mut utf8).as_bytes());
            }
        };
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => push_char(out, '"'),
                        Some(b'\\') => push_char(out, '\\'),
                        Some(b'/') => push_char(out, '/'),
                        Some(b'n') => push_char(out, '\n'),
                        Some(b'r') => push_char(out, '\r'),
                        Some(b't') => push_char(out, '\t'),
                        Some(b'u') => {
                            let hex = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..0xDC00).contains(&hex) {
                                // High surrogate: a low surrogate must follow
                                // as another \uXXXX escape (RFC 8259 §7).
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(
                                        self.err("high surrogate not followed by \\u escape")
                                    );
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(
                                        self.err("high surrogate not followed by low surrogate")
                                    );
                                }
                                self.pos += 6;
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            push_char(
                                out,
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    push_char(out, ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

/// Parses one instance line into a [`SolveRequest`].
pub fn read_instance_line(line_no: usize, line: &str) -> Result<SolveRequest, CorpusError> {
    let mut decoder = LineDecoder::new();
    decoder.decode(line_no, line)?;
    Ok(decoder.build_request())
}

/// Parses a whole JSONL corpus (blank and `#` lines skipped).
pub fn read_corpus(text: &str) -> Result<Vec<SolveRequest>, CorpusError> {
    let mut decoder = LineDecoder::new();
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        decoder.decode(i + 1, line)?;
        out.push(decoder.build_request());
    }
    Ok(out)
}

/// Serializes a whole corpus as JSONL.
pub fn write_corpus<'a>(requests: impl IntoIterator<Item = &'a SolveRequest>) -> String {
    let mut out = String::new();
    for req in requests {
        out.push_str(&write_instance_line(req.id.as_deref(), &req.instance));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-rewrite reference decoder: a [`Json`] tree plus field
    /// extraction. The streaming [`LineDecoder`] must agree with it on
    /// every line — success values and error classification alike.
    fn read_instance_line_via_tree(
        line_no: usize,
        line: &str,
    ) -> Result<SolveRequest, CorpusError> {
        let v = Json::parse(line).map_err(|error| CorpusError::Json {
            line: line_no,
            error,
        })?;
        let malformed = |reason: &str| CorpusError::Malformed {
            line: line_no,
            reason: reason.to_string(),
        };
        let id = v.get("id").and_then(|j| j.as_str()).map(str::to_owned);
        let machines = v
            .get("machines")
            .and_then(Json::as_usize)
            .ok_or_else(|| malformed("missing or invalid `machines`"))?;
        let classes_json = v
            .get("classes")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing or invalid `classes`"))?;
        let mut classes: Vec<Vec<Time>> = Vec::with_capacity(classes_json.len());
        for class in classes_json {
            let sizes = class
                .as_arr()
                .ok_or_else(|| malformed("`classes` entries must be arrays"))?;
            let sizes: Option<Vec<Time>> = sizes.iter().map(Json::as_u64).collect();
            classes
                .push(sizes.ok_or_else(|| malformed("job sizes must be non-negative integers"))?);
        }
        let instance =
            Instance::from_classes(machines, &classes).map_err(|e| CorpusError::Malformed {
                line: line_no,
                reason: e.to_string(),
            })?;
        Ok(SolveRequest { id, instance })
    }

    /// Asserts the streaming decoder and the tree reference agree on `line`
    /// (same request, or same error kind + line; byte offsets inside JSON
    /// errors may differ for interleaved-field lines).
    fn assert_agrees(line: &str) {
        let fast = read_instance_line(7, line);
        let tree = read_instance_line_via_tree(7, line);
        match (&fast, &tree) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.id, b.id, "{line}");
                assert_eq!(a.instance, b.instance, "{line}");
            }
            (Err(CorpusError::Json { line: la, .. }), Err(CorpusError::Json { line: lb, .. })) => {
                assert_eq!(la, lb, "{line}");
            }
            (
                Err(CorpusError::Malformed {
                    line: la,
                    reason: ra,
                }),
                Err(CorpusError::Malformed {
                    line: lb,
                    reason: rb,
                }),
            ) => {
                assert_eq!((la, ra), (lb, rb), "{line}");
            }
            other => panic!("decoders disagree on {line}: {other:?}"),
        }
    }

    #[test]
    fn instance_line_round_trip() {
        let inst = Instance::from_classes(3, &[vec![4, 3], vec![5], vec![2, 2, 2]]).unwrap();
        let line = write_instance_line(Some("x-1"), &inst);
        let req = read_instance_line(1, &line).unwrap();
        assert_eq!(req.id.as_deref(), Some("x-1"));
        assert_eq!(req.instance, inst);
    }

    #[test]
    fn decoder_agrees_with_tree_reference() {
        for line in [
            r#"{"id":"a","machines":2,"classes":[[1,2],[3]]}"#,
            r#"{"machines":1,"classes":[]}"#,
            r#"{"machines":1,"classes":[[]]}"#,
            r#" { "classes" : [ [ 1 ] ] , "machines" : 4 } "#,
            r#"{"id":"é \"q\" 😀","machines":2,"classes":[[0]]}"#,
            r#"{"id":7,"machines":2,"classes":[[1]]}"#,
            r#"{"extra":{"nested":[1,"x",null,true]},"machines":2,"classes":[[1]]}"#,
            r#"{"machines":2,"classes":[[1]],"machines":9}"#,
            r#"{"id":"a","id":"b","machines":2,"classes":[[1]]}"#,
            r#"{}"#,
            r#"{"machines":0,"classes":[[1]]}"#,
            r#"{"machines":-3,"classes":[[1]]}"#,
            r#"{"machines":2}"#,
            r#"{"machines":2,"classes":7}"#,
            r#"{"machines":2,"classes":[7]}"#,
            r#"{"machines":2,"classes":[[-1]]}"#,
            r#"{"machines":2,"classes":[[1.5]]}"#,
            r#"{"machines":2,"classes":[[01]]}"#,
            r#"{"machines":2,"classes":[[18446744073709551616]]}"#,
            r#"{"machines":2,"classes":[["x"]]}"#,
            r#"{"machines":2,"classes":[[1],"x"]}"#,
            r#"{"machines":2,"classes":[[1]]}extra"#,
            r#"{"machines":2,"classes":[[1]"#,
            r#"not json"#,
            r#"[1,2]"#,
            r#"{"machines":18446744073709551615,"classes":[[18446744073709551615],[1]]}"#,
            // Escaped spellings of schema keys are still those keys
            // (matched on the *unescaped* name, like the tree parser).
            r#"{"machine\u0073":2,"classes":[[1]]}"#,
            r#"{"i\u0064":"esc","machines":2,"classes":[[4],[5]]}"#,
            r#"{"\u0069d":7,"id":"second","machines":2,"classes":[[1]]}"#,
            r#"{"classe\u0073":[[9]],"machines":1,"classes":[[1,2]]}"#,
        ] {
            assert_agrees(line);
        }
    }

    #[test]
    fn decoder_is_reusable_and_allocation_lean() {
        let mut d = LineDecoder::new();
        d.decode(1, r#"{"id":"a","machines":2,"classes":[[4,3],[5]]}"#)
            .unwrap();
        assert_eq!(d.id_str(), Some("a"));
        assert_eq!(d.builder().machines(), 2);
        assert_eq!(d.builder().sizes(), &[4, 3, 5]);
        assert_eq!(d.builder().offsets(), &[0, 2, 3]);
        // Reuse with a shorter, id-less line: no stale state.
        d.decode(2, r#"{"machines":1,"classes":[[9]]}"#).unwrap();
        assert_eq!(d.id(), None);
        assert_eq!(d.builder().sizes(), &[9]);
        assert_eq!(d.builder().offsets(), &[0, 1]);
        let req = d.build_request();
        assert_eq!(req.id, None);
        assert_eq!(req.instance.machines(), 1);
    }

    #[test]
    fn corpus_round_trip_with_comments() {
        // satellite() builds via from_classes, so the round trip is exact.
        let a = SolveRequest::with_id("a", msrs_gen::satellite(7, 2, 3, 4));
        let b = SolveRequest::new(msrs_gen::photolithography(2, 3, 4, 5));
        let text = format!("# corpus\n\n{}", write_corpus([&a, &b]));
        let back = read_corpus(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].id.as_deref(), Some("a"));
        assert_eq!(back[0].instance, a.instance);
        assert_eq!(back[1].id, None);
        assert_eq!(back[1].instance, b.instance);
    }

    #[test]
    fn interleaved_instances_round_trip_to_canonical_form() {
        // Generators that interleave classes (Instance::new) round-trip to
        // the class-by-class canonical job order: same machines, same
        // per-class size lists, and the serialized form is a fixpoint.
        let inst = msrs_gen::uniform(1, 2, 8, 3, 1, 9);
        let line = write_instance_line(None, &inst);
        let back = read_instance_line(1, &line).unwrap().instance;
        assert_eq!(back.machines(), inst.machines());
        assert_eq!(back.num_jobs(), inst.num_jobs());
        for c in 0..inst.num_classes() {
            assert_eq!(back.class_sizes(c), inst.class_sizes(c));
        }
        assert_eq!(write_instance_line(None, &back), line);
    }

    #[test]
    fn errors_carry_line_numbers() {
        match read_corpus("{\"machines\":2,\"classes\":[[1]]}\nnot json\n") {
            Err(CorpusError::Json { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Json error, got {other:?}"),
        }
        match read_corpus("{\"machines\":0,\"classes\":[[1]]}\n") {
            Err(CorpusError::Malformed { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
