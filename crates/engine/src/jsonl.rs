//! JSON-lines corpus I/O: one instance (or report) per line.
//!
//! Instance lines look like
//!
//! ```json
//! {"id":"uniform-0","machines":3,"classes":[[4,3],[5],[2,2,2]]}
//! ```
//!
//! mirroring [`msrs_core::io`]'s text format (`classes[c]` lists the job
//! sizes of class `c`; job ids are assigned class by class in order, exactly
//! as [`Instance::from_classes`]). Blank lines and `#`-prefixed lines are
//! ignored. Report lines are produced by
//! [`SolveReport::to_json`](crate::report::SolveReport::to_json).

use std::fmt;

use msrs_core::{Instance, Time};

use crate::json::{Json, JsonError};
use crate::report::SolveRequest;

/// Errors reading an instance corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A line failed to parse as JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// Underlying JSON error.
        error: JsonError,
    },
    /// A line parsed but did not describe a valid instance.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
    /// The underlying reader failed (streaming input only).
    Io {
        /// 1-based number of the line being read when the error occurred.
        line: usize,
        /// Description of the I/O error.
        message: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Json { line, error } => write!(f, "line {line}: {error}"),
            CorpusError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            CorpusError::Io { line, message } => write!(f, "line {line}: I/O error: {message}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Serializes one instance (with an optional id) as a JSON line.
pub fn write_instance_line(id: Option<&str>, inst: &Instance) -> String {
    let mut obj = Vec::new();
    if let Some(id) = id {
        obj.push(("id".into(), Json::Str(id.into())));
    }
    obj.push(("machines".into(), Json::Num(inst.machines() as i128)));
    let classes: Vec<Json> = (0..inst.num_classes())
        .map(|c| {
            Json::Arr(
                inst.class_jobs(c)
                    .iter()
                    .map(|&j| Json::Num(inst.size(j) as i128))
                    .collect(),
            )
        })
        .collect();
    obj.push(("classes".into(), Json::Arr(classes)));
    Json::Obj(obj).to_string()
}

/// Parses one instance line into a [`SolveRequest`].
pub fn read_instance_line(line_no: usize, line: &str) -> Result<SolveRequest, CorpusError> {
    let v = Json::parse(line).map_err(|error| CorpusError::Json {
        line: line_no,
        error,
    })?;
    let malformed = |reason: &str| CorpusError::Malformed {
        line: line_no,
        reason: reason.to_string(),
    };
    let id = v.get("id").and_then(|j| j.as_str()).map(str::to_owned);
    let machines = v
        .get("machines")
        .and_then(Json::as_usize)
        .ok_or_else(|| malformed("missing or invalid `machines`"))?;
    let classes_json = v
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or_else(|| malformed("missing or invalid `classes`"))?;
    let mut classes: Vec<Vec<Time>> = Vec::with_capacity(classes_json.len());
    for class in classes_json {
        let sizes = class
            .as_arr()
            .ok_or_else(|| malformed("`classes` entries must be arrays"))?;
        let sizes: Option<Vec<Time>> = sizes.iter().map(Json::as_u64).collect();
        classes.push(sizes.ok_or_else(|| malformed("job sizes must be non-negative integers"))?);
    }
    let instance =
        Instance::from_classes(machines, &classes).map_err(|e| CorpusError::Malformed {
            line: line_no,
            reason: e.to_string(),
        })?;
    Ok(SolveRequest { id, instance })
}

/// Parses a whole JSONL corpus (blank and `#` lines skipped).
pub fn read_corpus(text: &str) -> Result<Vec<SolveRequest>, CorpusError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(read_instance_line(i + 1, line)?);
    }
    Ok(out)
}

/// Serializes a whole corpus as JSONL.
pub fn write_corpus<'a>(requests: impl IntoIterator<Item = &'a SolveRequest>) -> String {
    let mut out = String::new();
    for req in requests {
        out.push_str(&write_instance_line(req.id.as_deref(), &req.instance));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_line_round_trip() {
        let inst = Instance::from_classes(3, &[vec![4, 3], vec![5], vec![2, 2, 2]]).unwrap();
        let line = write_instance_line(Some("x-1"), &inst);
        let req = read_instance_line(1, &line).unwrap();
        assert_eq!(req.id.as_deref(), Some("x-1"));
        assert_eq!(req.instance, inst);
    }

    #[test]
    fn corpus_round_trip_with_comments() {
        // satellite() builds via from_classes, so the round trip is exact.
        let a = SolveRequest::with_id("a", msrs_gen::satellite(7, 2, 3, 4));
        let b = SolveRequest::new(msrs_gen::photolithography(2, 3, 4, 5));
        let text = format!("# corpus\n\n{}", write_corpus([&a, &b]));
        let back = read_corpus(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].id.as_deref(), Some("a"));
        assert_eq!(back[0].instance, a.instance);
        assert_eq!(back[1].id, None);
        assert_eq!(back[1].instance, b.instance);
    }

    #[test]
    fn interleaved_instances_round_trip_to_canonical_form() {
        // Generators that interleave classes (Instance::new) round-trip to
        // the class-by-class canonical job order: same machines, same
        // per-class size lists, and the serialized form is a fixpoint.
        let inst = msrs_gen::uniform(1, 2, 8, 3, 1, 9);
        let line = write_instance_line(None, &inst);
        let back = read_instance_line(1, &line).unwrap().instance;
        assert_eq!(back.machines(), inst.machines());
        assert_eq!(back.num_jobs(), inst.num_jobs());
        for c in 0..inst.num_classes() {
            let sizes = |i: &Instance, c: usize| -> Vec<Time> {
                i.class_jobs(c).iter().map(|&j| i.size(j)).collect()
            };
            assert_eq!(sizes(&back, c), sizes(&inst, c));
        }
        assert_eq!(write_instance_line(None, &back), line);
    }

    #[test]
    fn errors_carry_line_numbers() {
        match read_corpus("{\"machines\":2,\"classes\":[[1]]}\nnot json\n") {
            Err(CorpusError::Json { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Json error, got {other:?}"),
        }
        match read_corpus("{\"machines\":0,\"classes\":[[1]]}\n") {
            Err(CorpusError::Malformed { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
