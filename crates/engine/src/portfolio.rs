//! Portfolio planning: which solvers to run on a classified instance.

use crate::engine::EngineConfig;
use crate::profile::{InstanceProfile, SizeTier};

/// The solvers the engine can orchestrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// `Algorithm_5/3` (Theorem 2): `O(|I|)`, certified `⌊(5/3)·T⌋` horizon.
    FiveThirds,
    /// `Algorithm_3/2` (Theorem 7): `O(n + m log m)`, certified `⌊(3/2)·T⌋`.
    ThreeHalves,
    /// Hebrard et al.-style greedy baseline (heuristic, no a-priori bound
    /// reported by the implementation).
    HebrardGreedy,
    /// Class-respecting list scheduler baseline (heuristic).
    ListScheduler,
    /// Class-merging + LPT baseline (heuristic; `2m/(m+1)`-ish in practice).
    MergedLpt,
    /// Exact branch-and-bound under a node budget; proves optimality when it
    /// completes.
    Exact,
    /// The EPTAS (`eptas_fixed_m`) under a node budget; used as a
    /// high-quality heuristic probe on small instances.
    Eptas,
}

impl SolverKind {
    /// Stable machine-readable name (used in reports and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::FiveThirds => "five_thirds",
            SolverKind::ThreeHalves => "three_halves",
            SolverKind::HebrardGreedy => "hebrard_greedy",
            SolverKind::ListScheduler => "list_scheduler",
            SolverKind::MergedLpt => "merged_lpt",
            SolverKind::Exact => "exact",
            SolverKind::Eptas => "eptas",
        }
    }

    /// Parses a [`SolverKind::name`] back.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "five_thirds" => SolverKind::FiveThirds,
            "three_halves" => SolverKind::ThreeHalves,
            "hebrard_greedy" => SolverKind::HebrardGreedy,
            "list_scheduler" => SolverKind::ListScheduler,
            "merged_lpt" => SolverKind::MergedLpt,
            "exact" => SolverKind::Exact,
            "eptas" => SolverKind::Eptas,
            _ => return None,
        })
    }

    /// The a-priori approximation guarantee `(num, den)` relative to the
    /// certified lower bound `T ≤ OPT`: a completed run of this solver
    /// proves `OPT ≤ makespan ≤ (num/den)·T` — `None` for heuristics whose
    /// implementation reports no a-priori horizon. [`SolverKind::Exact`]
    /// proves `makespan = OPT` (ratio 1 relative to OPT itself).
    pub fn guarantee(self) -> Option<(u64, u64)> {
        match self {
            SolverKind::FiveThirds => Some((5, 3)),
            SolverKind::ThreeHalves => Some((3, 2)),
            SolverKind::Exact => Some((1, 1)),
            _ => None,
        }
    }

    /// All kinds, in the canonical execution order (cheap incumbents first).
    pub fn all() -> [SolverKind; 7] {
        [
            SolverKind::FiveThirds,
            SolverKind::ThreeHalves,
            SolverKind::HebrardGreedy,
            SolverKind::ListScheduler,
            SolverKind::MergedLpt,
            SolverKind::Exact,
            SolverKind::Eptas,
        ]
    }

    /// Stable column index of this kind in [`SolverKind::all`] order
    /// (telemetry outcome-table axis).
    pub const fn index(self) -> usize {
        match self {
            SolverKind::FiveThirds => 0,
            SolverKind::ThreeHalves => 1,
            SolverKind::HebrardGreedy => 2,
            SolverKind::ListScheduler => 3,
            SolverKind::MergedLpt => 4,
            SolverKind::Exact => 5,
            SolverKind::Eptas => 6,
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The planned portfolio for one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Portfolio {
    /// Members in canonical execution order.
    pub members: Vec<SolverKind>,
}

/// Plans the portfolio for `profile` under `cfg`.
///
/// * Trivial instances need only `Algorithm_5/3` (its shared fast path is
///   already optimal there).
/// * Every non-trivial instance gets both approximation algorithms — the
///   5/3 as an instant incumbent and the 3/2 for the certified 1.5 horizon —
///   plus the baselines when [`EngineConfig::run_baselines`] is set.
/// * Tiny instances additionally race the exact solver; small ones race the
///   EPTAS (both under node budgets from `cfg`).
pub fn plan(profile: &InstanceProfile, cfg: &EngineConfig) -> Portfolio {
    let mut members = vec![SolverKind::FiveThirds];
    if profile.tier != SizeTier::Trivial {
        members.push(SolverKind::ThreeHalves);
        if cfg.run_baselines {
            members.push(SolverKind::HebrardGreedy);
            members.push(SolverKind::ListScheduler);
            members.push(SolverKind::MergedLpt);
        }
        if profile.jobs <= cfg.exact.max_jobs && profile.classes <= cfg.exact.max_classes {
            members.push(SolverKind::Exact);
        }
        if cfg.eptas.enabled
            && profile.jobs <= cfg.eptas.max_jobs
            && profile.machines <= cfg.eptas.max_machines
        {
            members.push(SolverKind::Eptas);
        }
    }
    Portfolio { members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::classify;
    use msrs_core::Instance;

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn trivial_instances_get_the_fast_path_only() {
        let inst = Instance::from_classes(4, &[vec![3], vec![9]]).unwrap();
        let p = plan(&classify(&inst), &cfg());
        assert_eq!(p.members, vec![SolverKind::FiveThirds]);
    }

    #[test]
    fn tiny_instances_race_exact() {
        let inst = Instance::from_classes(2, &[vec![4, 3], vec![5], vec![2, 2]]).unwrap();
        let p = plan(&classify(&inst), &cfg());
        assert!(p.members.contains(&SolverKind::Exact));
        assert!(p.members.contains(&SolverKind::ThreeHalves));
        assert_eq!(p.members[0], SolverKind::FiveThirds);
    }

    #[test]
    fn large_instances_use_approximations_only() {
        let inst = msrs_gen::uniform(3, 8, 500, 64, 1, 40);
        let p = plan(&classify(&inst), &cfg());
        assert!(!p.members.contains(&SolverKind::Exact));
        assert!(!p.members.contains(&SolverKind::Eptas));
        assert!(p.members.contains(&SolverKind::ThreeHalves));
    }

    #[test]
    fn baselines_can_be_disabled() {
        let inst = msrs_gen::uniform(3, 8, 500, 64, 1, 40);
        let mut c = cfg();
        c.run_baselines = false;
        let p = plan(&classify(&inst), &c);
        assert_eq!(
            p.members,
            vec![SolverKind::FiveThirds, SolverKind::ThreeHalves]
        );
    }

    #[test]
    fn names_round_trip() {
        for kind in SolverKind::all() {
            assert_eq!(SolverKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SolverKind::from_name("nope"), None);
    }

    #[test]
    fn index_matches_canonical_order() {
        for (i, kind) in SolverKind::all().iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }
}
