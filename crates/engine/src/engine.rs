//! The engine: parallel portfolio/batch execution with certified selection.
//!
//! All parallelism runs on the workspace's `rayon` backend (the chunked
//! shared-queue scheduler in `vendor/rayon`): batches fan instances out
//! across pool workers, and a single solve optionally fans its portfolio
//! members out the same way. Deadlines are enforced *cooperatively*: a
//! [`CancelToken`] derived from
//! [`EngineConfig::deadline`] is threaded into every member, and the
//! unbounded solvers (exact branch-and-bound, EPTAS) poll it inside their
//! search loops — so the deadline bounds each member's runtime, not merely
//! when the engine stops waiting.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use msrs_core::{validate, CancelToken, CanonicalForm, CanonicalScratch, Instance, Schedule, Time};
use msrs_exact::{SolveLimits, SolveOutcome};
use msrs_ptas::EptasConfig;
use msrs_telemetry::{registry, OutcomeStatus, Stage};

use crate::cache::{CacheKey, ReportCache};
use crate::portfolio::{plan, Portfolio, SolverKind};
use crate::profile::{classify, InstanceProfile, SizeTier};
use crate::report::{RunStatus, SolveReport, SolveRequest, SolverRun};

/// Outcome-table row labels: [`SizeTier`]s in [`SizeTier::index`] order.
const TIER_LABELS: [&str; 4] = ["trivial", "tiny", "small", "large"];
/// Outcome-table column labels: [`SolverKind`]s in [`SolverKind::index`]
/// order.
const MEMBER_LABELS: [&str; 7] = [
    "five_thirds",
    "three_halves",
    "hebrard_greedy",
    "list_scheduler",
    "merged_lpt",
    "exact",
    "eptas",
];

/// When the exact branch-and-bound is planned and how hard it tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactPolicy {
    /// Plan the exact solver only when `n ≤ max_jobs`.
    pub max_jobs: usize,
    /// … and the non-empty class count is `≤ max_classes`.
    pub max_classes: usize,
    /// Node budget; exhaustion yields [`RunStatus::Exhausted`].
    pub max_nodes: u64,
}

impl Default for ExactPolicy {
    fn default() -> Self {
        // Tied to the classifier's Tiny tier so `InstanceProfile.tier` and
        // the planned portfolio agree by construction.
        ExactPolicy {
            max_jobs: crate::profile::TINY_MAX_JOBS,
            max_classes: crate::profile::TINY_MAX_CLASSES,
            max_nodes: 3_000_000,
        }
    }
}

/// When the EPTAS is planned and with which parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptasPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Plan the EPTAS only when `n ≤ max_jobs`.
    pub max_jobs: usize,
    /// … and `m ≤ max_machines` (the engine uses the fixed-`m` variant so
    /// the schedule stays valid for the *original* machine count).
    pub max_machines: usize,
    /// `ε = 1/eps_k`.
    pub eps_k: u64,
    /// Node budget per layered decision.
    pub node_budget: u64,
}

impl Default for EptasPolicy {
    fn default() -> Self {
        // Tied to the classifier's Small tier (see ExactPolicy).
        EptasPolicy {
            enabled: true,
            max_jobs: crate::profile::SMALL_MAX_JOBS,
            max_machines: crate::profile::SMALL_MAX_MACHINES,
            eps_k: 3,
            node_budget: 300_000,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the engine's pool (batch solving and parallel
    /// portfolios); `0` = the backend default (`MSRS_THREADS` or available
    /// parallelism).
    pub threads: usize,
    /// Run portfolio members of a *single* [`Engine::solve`] on pool
    /// workers (batches always parallelize across instances instead, so
    /// workers are never oversubscribed).
    pub parallel_portfolio: bool,
    /// Optional wall-clock deadline per instance, enforced *inside* the
    /// unbounded members: the exact branch-and-bound and the EPTAS poll a
    /// shared [`CancelToken`] and unwind cooperatively, reporting
    /// [`RunStatus::TimedOut`] with their true (overshoot-free) wall time.
    /// The always-terminating members (the `O(|I|)` approximations and
    /// baselines) run to completion, so a report always carries a valid
    /// certified schedule and the total overshoot is bounded by one
    /// linear-time pass plus the cancellation-check granularity. **Opt-in
    /// nondeterminism** — leave `None` for bit-reproducible runs.
    pub deadline: Option<Duration>,
    /// Include the prior-work baselines in portfolios.
    pub run_baselines: bool,
    /// Capacity of the canonical-form result cache (reports); `0` disables
    /// caching *and* intra-batch dedup. The default comes from the
    /// `MSRS_CACHE` environment variable (`off`/`0` or unset → disabled,
    /// `on` → 1024, any number → that capacity), so a CI matrix can run
    /// the whole test suite cache-enabled without code changes. Cached
    /// reports are bit-identical to fresh ones except `cache_hit` and the
    /// `wall_micros` timings; with a [`deadline`](Self::deadline)
    /// configured (opt-in nondeterminism) the cache is bypassed entirely.
    pub cache_capacity: usize,
    /// Exact-solver policy.
    pub exact: ExactPolicy,
    /// EPTAS policy.
    pub eptas: EptasPolicy,
}

/// Default cache capacity when `MSRS_CACHE=on` and for the `msrs` CLI.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

fn cache_capacity_from_env() -> usize {
    match std::env::var("MSRS_CACHE") {
        Ok(v) if v.eq_ignore_ascii_case("off") => 0,
        // Any other set value means "cache wanted": a number is taken as
        // the capacity, everything else (`on`, but also typos like `true`)
        // falls back to the default capacity rather than silently
        // disabling the cache a CI matrix meant to enable.
        Ok(v) => v.parse().unwrap_or(DEFAULT_CACHE_CAPACITY),
        Err(_) => 0,
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            parallel_portfolio: true,
            deadline: None,
            run_baselines: true,
            cache_capacity: cache_capacity_from_env(),
            exact: ExactPolicy::default(),
            eptas: EptasPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// The pool handle this configuration's parallel work runs on.
    fn pool(&self) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("pool handles are always constructible")
    }

    /// The cancellation token for one solve starting at `started`. A
    /// deadline too large to represent as an `Instant` (e.g.
    /// `--deadline-ms u64::MAX`) can never fire, so it degrades to no
    /// deadline instead of panicking on `Instant` overflow.
    fn cancel_token(&self, started: Instant) -> Option<CancelToken> {
        self.deadline
            .and_then(|d| started.checked_add(d))
            .map(CancelToken::with_deadline)
    }

    /// A stable fingerprint over every configuration field that can change
    /// *report content* (as opposed to timings): the solver policies,
    /// baseline participation, and the portfolio execution shape. Thread
    /// count and cache capacity are deliberately excluded — reports are
    /// bit-identical across both — so cache entries stay valid across
    /// those knobs. Part of the [`CacheKey`].
    pub fn content_fingerprint(&self) -> u64 {
        // FNV-1a (64-bit) over the content-relevant fields; stable across
        // platforms and runs, unlike `std::hash`.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut put = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        put(self.run_baselines as u64);
        put(self.exact.max_jobs as u64);
        put(self.exact.max_classes as u64);
        put(self.exact.max_nodes);
        put(self.eptas.enabled as u64);
        put(self.eptas.max_jobs as u64);
        put(self.eptas.max_machines as u64);
        put(self.eptas.eps_k);
        put(self.eptas.node_budget);
        h
    }
}

/// The portfolio orchestrator. Construction is cheap; apart from the
/// result cache (shared by clones, internally synchronized) the engine is
/// stateless between calls and `Sync`, so one instance can serve many
/// threads.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: EngineConfig,
    cache: Arc<ReportCache>,
    /// [`EngineConfig::content_fingerprint`], precomputed once — the serve
    /// path builds one cache key per corpus line.
    config_fp: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

/// Per-thread reusable solve scratch: the canonicalization buffers every
/// request needs, hit or miss. The worker pool's threads are persistent, so
/// one scratch per worker lives for the process — shard loops in
/// [`Engine::solve_batch_vec`] and the streaming pipeline recycle it across
/// shards instead of re-allocating per instance.
#[derive(Default)]
pub(crate) struct SolveScratch {
    pub(crate) canonical: CanonicalScratch,
}

thread_local! {
    static SOLVE_SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::default());
}

/// Canonicalizes `inst` through the calling thread's persistent scratch.
fn canonical_form_pooled(inst: &Instance) -> CanonicalForm {
    let _span = Stage::Canonicalize.span();
    SOLVE_SCRATCH.with(|s| CanonicalForm::of_with(inst, &mut s.borrow_mut().canonical))
}

/// Everything a finished member hands back.
struct MemberOutcome {
    status: RunStatus,
    schedule: Option<Schedule>,
    makespan: Option<Time>,
    certified_horizon: Option<Time>,
    nodes: Option<u64>,
    wall_micros: u64,
}

impl MemberOutcome {
    /// A member the deadline preempted before it even started.
    fn timed_out_unstarted() -> Self {
        MemberOutcome {
            status: RunStatus::TimedOut,
            schedule: None,
            makespan: None,
            certified_horizon: None,
            nodes: None,
            wall_micros: 0,
        }
    }
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        // Label the telemetry outcome table once per process (first engine
        // wins; the labels are the same for every engine).
        msrs_telemetry::set_outcome_labels(&TIER_LABELS, &MEMBER_LABELS);
        let cache = Arc::new(ReportCache::new(cfg.cache_capacity));
        let config_fp = cfg.content_fingerprint();
        Engine {
            cfg,
            cache,
            config_fp,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Whether requests are served through the result cache: the cache has
    /// capacity and no deadline is configured (deadline results are
    /// wall-clock-dependent, so memoizing them would be unsound).
    fn cache_active(&self) -> bool {
        self.cache.enabled() && self.cfg.deadline.is_none()
    }

    fn cache_key(&self, form: &CanonicalForm) -> CacheKey {
        CacheKey {
            instance: form.fingerprint(),
            config: self.config_fp,
        }
    }

    /// Whether the byte-level serve path ([`crate::stream::JsonlServer`])
    /// may serve lines by canonical fingerprint (cache has capacity, no
    /// deadline configured). When false, serving degenerates to the typed
    /// pipeline: every line is materialized and batch-solved.
    pub(crate) fn serve_cache_active(&self) -> bool {
        self.cache_active()
    }

    /// Cache probe of the byte-level serve path: the canonical report for a
    /// decoded line, by fingerprint alone. Must only be called when
    /// [`serve_cache_active`](Self::serve_cache_active) is true.
    pub(crate) fn serve_cached(&self, fingerprint: u128) -> Option<Arc<SolveReport>> {
        self.cache.get(&CacheKey {
            instance: fingerprint,
            config: self.config_fp,
        })
    }

    /// Accounts an in-shard duplicate the serve path answered at the byte
    /// level — the same event the typed batch counts via its dedup fan-out.
    pub(crate) fn count_serve_dedup_hit(&self) {
        self.cache.count_dedup_hit();
    }

    /// Metric-neutral cache probe by fingerprint: no hit/miss counters,
    /// no recency refresh. The fleet cache exchange uses this to decide
    /// what to ask the coordinator for without perturbing cache stats.
    pub(crate) fn serve_cached_peek(&self, fingerprint: u128) -> Option<Arc<SolveReport>> {
        self.cache.peek(&CacheKey {
            instance: fingerprint,
            config: self.config_fp,
        })
    }

    /// Installs a canonical report fetched from the coordinator's shared
    /// cache under `fingerprint`, so subsequent lines serve it from the
    /// local fast path.
    pub(crate) fn serve_cache_install(&self, fingerprint: u128, report: Arc<SolveReport>) {
        self.cache.insert(
            CacheKey {
                instance: fingerprint,
                config: self.config_fp,
            },
            report,
        );
    }

    /// Attaches the durable cache store at `path` (`--cache-path`): loads
    /// every compatible record into the in-memory cache (warm restart),
    /// then starts the background flusher so future inserts are persisted
    /// write-through. Returns the load statistics. Refuses a store written
    /// under a different engine-config fingerprint, and is a no-op with
    /// caching disabled (capacity 0).
    pub fn attach_cache_store(&self, path: &Path) -> io::Result<crate::cachestore::CacheLoadStats> {
        let (store, entries, stats) = crate::cachestore::CacheStore::open(path, self.config_fp)?;
        if !self.cache.enabled() {
            return Ok(stats);
        }
        let mut seen = std::collections::HashSet::with_capacity(entries.len());
        for entry in entries {
            seen.insert(entry.fingerprint);
            self.cache.insert(
                CacheKey {
                    instance: entry.fingerprint,
                    config: self.config_fp,
                },
                entry.report,
            );
        }
        self.cache.attach_store(store, self.config_fp, seen);
        Ok(stats)
    }

    /// Solves one request with the planned portfolio (parallel across
    /// members when [`EngineConfig::parallel_portfolio`] is set).
    ///
    /// Every solve runs on the *canonical form* of the instance (sorted
    /// class multisets — order- and ID-insensitive) and the schedule is
    /// mapped back to the request's job ids, so relabelled duplicates
    /// receive identical reports and result caching is sound by
    /// construction.
    pub fn solve(&self, req: &SolveRequest) -> SolveReport {
        let started = Instant::now();
        let form = canonical_form_pooled(&req.instance);
        if self.cache_active() {
            let key = self.cache_key(&form);
            if let Some(canonical) = self.cache.get(&key) {
                return finalize((*canonical).clone(), &form, req, true, started);
            }
            let canonical = Arc::new(self.solve_canonical(form.instance(), false));
            self.cache.insert(key, Arc::clone(&canonical));
            return finalize((*canonical).clone(), &form, req, false, started);
        }
        let canonical = self.solve_canonical(form.instance(), false);
        finalize(canonical, &form, req, false, started)
    }

    /// Convenience: solve a bare instance.
    pub fn solve_instance(&self, inst: &Instance) -> SolveReport {
        self.solve(&SolveRequest::new(inst.clone()))
    }

    /// Solves a batch on the pool, one instance per task. Reports come back
    /// in request order, and — with no deadline configured — every field
    /// except the `wall_micros` timings and `cache_hit` is identical
    /// regardless of thread count *and* of cache configuration: the pool's
    /// chunk boundaries depend only on the batch length, work distribution
    /// only decides *which worker* computes a report (each report is
    /// computed sequentially by a single worker), collection is
    /// order-preserving, and cached reports are replays of the same
    /// deterministic canonical solve.
    ///
    /// With the cache enabled the batch is additionally *deduplicated by
    /// canonical form*: each distinct form is solved once on the pool (in
    /// first-occurrence order) and the report fanned out to every duplicate
    /// request, so a duplicate-heavy corpus collapses to its
    /// distinct-instance count.
    ///
    /// The borrowed slice is copied once up front (pool jobs are `'static`
    /// and cannot hold the borrow); callers that own their requests — the
    /// streaming shard pipeline does — should use
    /// [`solve_batch_vec`](Self::solve_batch_vec), which shares them
    /// zero-copy behind an `Arc`.
    pub fn solve_batch(&self, reqs: &[SolveRequest]) -> Vec<SolveReport> {
        self.solve_batch_vec(reqs.to_vec())
    }

    /// [`solve_batch`](Self::solve_batch) taking ownership of the requests —
    /// the zero-copy entry point of the streaming shard pipeline
    /// ([`crate::stream::solve_stream`]): pool workers share the request
    /// vector behind an `Arc` instead of cloning it, so a shard costs
    /// exactly its own allocation.
    pub fn solve_batch_vec(&self, reqs: Vec<SolveRequest>) -> Vec<SolveReport> {
        if self.cache_active() {
            return self.solve_batch_deduped(reqs);
        }
        let reqs = Arc::new(reqs);
        let engine = self.clone();
        let shared = Arc::clone(&reqs);
        self.cfg.pool().install(|| {
            (0..reqs.len())
                .into_par_iter()
                .map(move |i| engine.solve_one_worker(&shared[i]))
                .collect()
        })
    }

    /// Batch worker path (cache inactive): canonicalized sequential solve
    /// through the worker's persistent [`SolveScratch`].
    fn solve_one_worker(&self, req: &SolveRequest) -> SolveReport {
        let started = Instant::now();
        let form = canonical_form_pooled(&req.instance);
        let canonical = self.solve_canonical(form.instance(), true);
        finalize(canonical, &form, req, false, started)
    }

    /// Cache-enabled batch path: canonicalize, dedup, solve each distinct
    /// uncached form once on the pool, then fan reports out in order.
    fn solve_batch_deduped(&self, reqs: Vec<SolveRequest>) -> Vec<SolveReport> {
        let pool = self.cfg.pool();
        let reqs = Arc::new(reqs);
        let forms: Arc<Vec<CanonicalForm>> = {
            let shared = Arc::clone(&reqs);
            Arc::new(pool.install(|| {
                (0..reqs.len())
                    .into_par_iter()
                    .map(move |i| canonical_form_pooled(&shared[i].instance))
                    .collect()
            }))
        };
        // Dedup by fingerprint, keeping first-occurrence order; decide
        // per-request provenance (fresh solve vs cache vs intra-batch
        // duplicate) sequentially so the hit/miss counters are
        // deterministic for a fixed engine + corpus.
        let key_of = |idx: usize| self.cache_key(&forms[idx]);
        let mut first_of: HashMap<u128, usize> = HashMap::new();
        let mut to_solve: Vec<usize> = Vec::new();
        let mut cached: HashMap<u128, Arc<SolveReport>> = HashMap::new();
        let mut fresh: Vec<bool> = vec![false; reqs.len()];
        for idx in 0..reqs.len() {
            let fp = forms[idx].fingerprint();
            if first_of.contains_key(&fp) || cached.contains_key(&fp) {
                self.cache.count_dedup_hit();
                continue;
            }
            if let Some(report) = self.cache.get(&key_of(idx)) {
                cached.insert(fp, report);
                continue;
            }
            first_of.insert(fp, idx);
            to_solve.push(idx);
            fresh[idx] = true;
        }
        let solved: Vec<SolveReport> = {
            let engine = self.clone();
            let shared_forms = Arc::clone(&forms);
            let indices = to_solve.clone();
            pool.install(|| {
                indices
                    .into_par_iter()
                    .map(move |idx| engine.solve_canonical(shared_forms[idx].instance(), true))
                    .collect()
            })
        };
        for (&idx, report) in to_solve.iter().zip(solved) {
            let fp = forms[idx].fingerprint();
            let shared = Arc::new(report);
            self.cache.insert(key_of(idx), Arc::clone(&shared));
            cached.insert(fp, shared);
        }
        reqs.iter()
            .zip(forms.iter())
            .zip(&fresh)
            .map(|((req, form), &is_fresh)| {
                // Hits report their fan-out (serving) cost, not the batch
                // duration; fresh reports keep their solve time.
                let served = Instant::now();
                let canonical = (*cached[&form.fingerprint()]).clone();
                finalize(canonical, form, req, !is_fresh, served)
            })
            .collect()
    }

    /// Solves a canonical instance, producing the canonical report (no id,
    /// canonical job numbering). `on_worker` forces the sequential member
    /// path (batch workers parallelize across instances instead).
    fn solve_canonical(&self, inst: &Instance, on_worker: bool) -> SolveReport {
        let (profile, portfolio) = {
            let _span = Stage::Plan.span();
            let profile = classify(inst);
            let portfolio = plan(&profile, &self.cfg);
            (profile, portfolio)
        };
        let _span = Stage::MemberRace.span();
        if !on_worker && self.cfg.parallel_portfolio && portfolio.members.len() > 1 {
            self.run_parallel(inst, &profile, &portfolio)
        } else {
            self.run_sequential(inst, &profile, &portfolio)
        }
    }

    fn run_sequential(
        &self,
        inst: &Instance,
        profile: &InstanceProfile,
        portfolio: &Portfolio,
    ) -> SolveReport {
        let started = Instant::now();
        let cancel = self.cfg.cancel_token(started);
        // Members run with nested parallelism pinned off (exactly as they
        // do on pool workers in the batch and parallel-portfolio paths), so
        // a sequential portfolio produces bit-identical reports — including
        // branch-and-bound node counts — at any ambient thread count.
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool handles are always constructible");
        let mut outcomes: Vec<(SolverKind, MemberOutcome)> = Vec::new();
        for (idx, &kind) in portfolio.members.iter().enumerate() {
            // Honour the deadline between members; the first member is always
            // run so the report carries a schedule. Members that *do* start
            // additionally poll the token inside their own search loops.
            let timed_out = idx > 0 && cancel.as_ref().is_some_and(CancelToken::is_cancelled);
            if timed_out {
                outcomes.push((kind, MemberOutcome::timed_out_unstarted()));
                continue;
            }
            // The exact member is warm-started from the best heuristic
            // schedule found so far (the members before it in canonical
            // order), seeding its incumbent without recomputing heuristics.
            let warm = if kind == SolverKind::Exact {
                best_completed_schedule(&outcomes)
            } else {
                None
            };
            outcomes.push((
                kind,
                one.install(|| run_solver(kind, inst, &self.cfg, cancel.as_ref(), warm.as_ref())),
            ));
        }
        assemble(profile, outcomes, started)
    }

    fn run_parallel(
        &self,
        inst: &Instance,
        profile: &InstanceProfile,
        portfolio: &Portfolio,
    ) -> SolveReport {
        let started = Instant::now();
        let cancel = self.cfg.cancel_token(started);
        // Two waves: every member except the exact solver races first, then
        // the exact solver runs warm-started from the best heuristic
        // schedule — the same incumbent the sequential path hands it, so
        // both paths produce bit-identical report content. Every member
        // joins: the unbounded ones poll the shared token and unwind
        // cooperatively at the deadline, so joining cannot stall past
        // deadline + slack. Panics inside a member are caught and surfaced
        // as `Invalid` outcomes so a bug in one solver is reported instead
        // of masquerading as a timeout.
        let wave1: Vec<SolverKind> = portfolio
            .members
            .iter()
            .copied()
            .filter(|&k| k != SolverKind::Exact)
            .collect();
        // Members fan out as 'static pool jobs: they share an `Arc` of the
        // canonical instance plus owned config/token clones (the instance
        // clone is one allocation against a whole portfolio solve).
        let shared_inst = Arc::new(inst.clone());
        let shared_cfg = self.cfg.clone();
        let shared_cancel = cancel.clone();
        let wave_outcomes: Vec<(SolverKind, MemberOutcome)> = self.cfg.pool().install(|| {
            wave1
                .into_par_iter()
                .map(move |kind| {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_solver(
                            kind,
                            &shared_inst,
                            &shared_cfg,
                            shared_cancel.as_ref(),
                            None,
                        )
                    }))
                    .unwrap_or_else(|payload| {
                        let reason = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "solver panicked".into());
                        MemberOutcome {
                            status: RunStatus::Invalid(format!("panic: {reason}")),
                            schedule: None,
                            makespan: None,
                            certified_horizon: None,
                            nodes: None,
                            wall_micros: 0,
                        }
                    });
                    (kind, outcome)
                })
                .collect()
        });
        // Reassemble in canonical member order, running the exact member
        // (warm) in its slot. The warm incumbent considers only members
        // *before* Exact in canonical order, mirroring run_sequential.
        let mut outcomes: Vec<(SolverKind, MemberOutcome)> = Vec::new();
        let mut wave_iter = wave_outcomes.into_iter();
        for &kind in &portfolio.members {
            if kind == SolverKind::Exact {
                let warm = best_completed_schedule(&outcomes);
                let one = rayon::ThreadPoolBuilder::new()
                    .num_threads(1)
                    .build()
                    .expect("pool handles are always constructible");
                outcomes.push((
                    kind,
                    one.install(|| {
                        run_solver(kind, inst, &self.cfg, cancel.as_ref(), warm.as_ref())
                    }),
                ));
            } else {
                outcomes.push(wave_iter.next().expect("wave covers non-exact members"));
            }
        }
        assemble(profile, outcomes, started)
    }
}

/// The best (least-makespan) schedule among completed members so far — the
/// warm-start incumbent for the exact solver. Ties keep the earliest
/// member, so the choice is deterministic.
fn best_completed_schedule(outcomes: &[(SolverKind, MemberOutcome)]) -> Option<Schedule> {
    let mut best: Option<(Time, &Schedule)> = None;
    for (_, outcome) in outcomes {
        if outcome.status != RunStatus::Completed {
            continue;
        }
        let (Some(makespan), Some(schedule)) = (outcome.makespan, outcome.schedule.as_ref()) else {
            continue;
        };
        if best.is_none_or(|(b, _)| makespan < b) {
            best = Some((makespan, schedule));
        }
    }
    best.map(|(_, s)| s.clone())
}

/// Turns a canonical report into the caller-facing one: echoes the request
/// id, maps the schedule back to the request's job numbering, stamps the
/// cache provenance, and reports the true serving time.
fn finalize(
    mut canonical: SolveReport,
    form: &CanonicalForm,
    req: &SolveRequest,
    cache_hit: bool,
    started: Instant,
) -> SolveReport {
    registry().requests_total.inc();
    canonical.id = req.id.clone();
    canonical.schedule = form.schedule_to_original(&canonical.schedule);
    canonical.cache_hit = cache_hit;
    if cache_hit {
        canonical.wall_micros = started.elapsed().as_micros() as u64;
    }
    canonical
}

/// A member's raw answer: schedule + optional certified horizon, or a
/// terminal status (budget exhaustion).
type RawAnswer = Result<(Schedule, Option<Time>), RunStatus>;

/// Runs one portfolio member, re-validating its output (defense in depth —
/// the engine never trusts a schedule it did not check). The unbounded
/// members (exact, EPTAS) poll `cancel` inside their search loops;
/// `wall_micros` always reports the member's true elapsed time, so timed-out
/// members show overshoot-free runtimes close to the configured deadline.
fn run_solver(
    kind: SolverKind,
    inst: &Instance,
    cfg: &EngineConfig,
    cancel: Option<&CancelToken>,
    warm: Option<&Schedule>,
) -> MemberOutcome {
    let started = Instant::now();
    let (result, nodes): (RawAnswer, Option<u64>) = match kind {
        SolverKind::FiveThirds => {
            let r = msrs_approx::five_thirds(inst);
            (Ok((r.schedule, Some(r.horizon))), None)
        }
        SolverKind::ThreeHalves => {
            let r = msrs_approx::three_halves(inst);
            (Ok((r.schedule, Some(r.horizon))), None)
        }
        SolverKind::HebrardGreedy => {
            let r = msrs_approx::baselines::hebrard_greedy(inst);
            (Ok((r.schedule, None)), None)
        }
        SolverKind::ListScheduler => {
            let r = msrs_approx::baselines::list_scheduler(inst);
            (Ok((r.schedule, None)), None)
        }
        SolverKind::MergedLpt => {
            let r = msrs_approx::baselines::merged_lpt(inst);
            (Ok((r.schedule, None)), None)
        }
        SolverKind::Exact => {
            let limits = SolveLimits {
                max_nodes: cfg.exact.max_nodes,
            };
            // Warm-start from the portfolio's best heuristic schedule when
            // one is available — the search seeds its incumbent from it
            // instead of recomputing the built-in heuristics.
            let outcome = match warm {
                Some(schedule) => msrs_exact::solve_warm(inst, limits, cancel, schedule),
                None => msrs_exact::solve(inst, limits, cancel),
            };
            match outcome {
                // A completed exact run proves its makespan optimal, so
                // the makespan itself is the tightest possible horizon.
                SolveOutcome::Optimal(res) => {
                    (Ok((res.schedule, Some(res.makespan))), Some(res.nodes))
                }
                SolveOutcome::Exhausted { nodes } => (Err(RunStatus::Exhausted), Some(nodes)),
                SolveOutcome::Cancelled { nodes } => (Err(RunStatus::TimedOut), Some(nodes)),
            }
        }
        SolverKind::Eptas => {
            let eptas_cfg = EptasConfig {
                eps_k: cfg.eptas.eps_k,
                node_budget: cfg.eptas.node_budget,
            };
            let out = match cancel {
                Some(token) => msrs_ptas::eptas_fixed_m_cancellable(inst, eptas_cfg, token),
                None => Some(msrs_ptas::eptas_fixed_m(inst, eptas_cfg)),
            };
            match out {
                // The engine treats the EPTAS as a high-quality heuristic
                // probe: its (1+O(ε)) bound is relative to OPT with an
                // implementation-dependent constant, so no T-relative
                // horizon is certified here.
                Some(out) => (Ok((out.schedule, None)), None),
                None => (Err(RunStatus::TimedOut), None),
            }
        }
    };
    let outcome = match result {
        Err(status) => MemberOutcome {
            status,
            schedule: None,
            makespan: None,
            certified_horizon: None,
            nodes,
            wall_micros: 0,
        },
        Ok((schedule, certified_horizon)) => match validate(inst, &schedule) {
            Ok(()) => {
                let makespan = schedule.makespan(inst);
                MemberOutcome {
                    status: RunStatus::Completed,
                    schedule: Some(schedule),
                    makespan: Some(makespan),
                    certified_horizon,
                    nodes,
                    wall_micros: 0,
                }
            }
            Err(e) => MemberOutcome {
                status: RunStatus::Invalid(e.to_string()),
                schedule: None,
                makespan: None,
                certified_horizon: None,
                nodes,
                wall_micros: 0,
            },
        },
    };
    MemberOutcome {
        wall_micros: started.elapsed().as_micros() as u64,
        ..outcome
    }
}

/// Records every member run of one fresh canonical solve into the global
/// per-(profile, member) outcome table.
fn record_outcomes(tier: SizeTier, outcomes: &[(SolverKind, MemberOutcome)], winner: SolverKind) {
    for (kind, outcome) in outcomes {
        let status = match outcome.status {
            RunStatus::Completed => OutcomeStatus::Completed,
            RunStatus::TimedOut => OutcomeStatus::TimedOut,
            RunStatus::Exhausted => OutcomeStatus::Exhausted,
            RunStatus::Invalid(_) => OutcomeStatus::Invalid,
        };
        registry().outcomes.record(
            tier.index(),
            kind.index(),
            status,
            *kind == winner && outcome.status == RunStatus::Completed,
            outcome.nodes.unwrap_or(0),
            outcome.wall_micros,
        );
    }
}

/// Best-of selection and assembly of the canonical report (id and schedule
/// numbering are canonical; [`finalize`] maps them to the request).
fn assemble(
    profile: &InstanceProfile,
    outcomes: Vec<(SolverKind, MemberOutcome)>,
    started: Instant,
) -> SolveReport {
    // Winner: least makespan among completed members; ties keep the earliest
    // (canonical) member, making selection deterministic.
    let mut winner: Option<(SolverKind, Time)> = None;
    // Certificate: tightest a-priori horizon among completed certifying runs.
    let mut certificate: Option<(SolverKind, Time)> = None;
    let mut proven_optimal = false;
    for (kind, outcome) in &outcomes {
        if outcome.status != RunStatus::Completed {
            continue;
        }
        let makespan = outcome.makespan.expect("completed runs carry a makespan");
        if winner.is_none_or(|(_, best)| makespan < best) {
            winner = Some((*kind, makespan));
        }
        if let Some(h) = outcome.certified_horizon {
            if certificate.is_none_or(|(_, best)| h < best) {
                certificate = Some((*kind, h));
            }
        }
        if *kind == SolverKind::Exact {
            proven_optimal = true;
        }
    }
    // Both expectations hold whenever the certifying 5/3 member completed
    // (it always participates, is total, and carries a horizon); if it did
    // not, name every member's terminal status instead of a bare unwrap.
    let member_states = || -> String {
        outcomes
            .iter()
            .map(|(k, o)| format!("{}={}", k.name(), o.status.label()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let (winner_kind, makespan) = winner.unwrap_or_else(|| {
        panic!(
            "no portfolio member produced a valid schedule ({})",
            member_states()
        )
    });
    let (certified_by, certified_horizon) = certificate
        .unwrap_or_else(|| panic!("no certifying member completed ({})", member_states()));
    // Feed the telemetry outcome table: one row per member of this fresh
    // canonical solve (cache hits replay a stored report without re-running
    // members, so they add nothing here — the table counts actual runs).
    record_outcomes(profile.tier, &outcomes, winner_kind);
    // Meeting the lower bound is an optimality proof in its own right
    // (T ≤ OPT ≤ makespan = T), independent of the exact member.
    let proven_optimal = proven_optimal || makespan == profile.lower_bound;
    let schedule = outcomes
        .iter()
        .find(|(kind, o)| *kind == winner_kind && o.status == RunStatus::Completed)
        .and_then(|(_, o)| o.schedule.clone())
        .expect("winner carries its schedule");
    let runs = outcomes
        .into_iter()
        .map(|(solver, o)| SolverRun {
            solver,
            status: o.status,
            makespan: o.makespan,
            certified_horizon: o.certified_horizon,
            nodes: o.nodes,
            wall_micros: o.wall_micros,
        })
        .collect();
    SolveReport {
        id: None,
        jobs: profile.jobs,
        machines: profile.machines,
        classes: profile.classes,
        lower_bound: profile.lower_bound,
        makespan,
        winner: winner_kind,
        certified_horizon,
        certified_by,
        proven_optimal,
        cache_hit: false,
        wall_micros: started.elapsed().as_micros() as u64,
        runs,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_labels_match_enum_names() {
        for tier in SizeTier::ALL {
            assert_eq!(TIER_LABELS[tier.index()], tier.name());
        }
        for (i, kind) in SolverKind::all().iter().enumerate() {
            assert_eq!(MEMBER_LABELS[i], kind.name());
        }
    }

    #[test]
    fn solve_produces_a_certified_valid_schedule() {
        let inst = msrs_gen::uniform(11, 4, 60, 10, 1, 50);
        let engine = Engine::default();
        let report = engine.solve(&SolveRequest::with_id("u-11", inst.clone()));
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
        assert_eq!(report.schedule.makespan(&inst), report.makespan);
        assert!(report.makespan <= report.certified_horizon);
        // The 3/2 algorithm always participates on non-trivial instances, so
        // the certificate is at most ⌊1.5·T⌋.
        assert!(report.certified_horizon as u128 * 2 <= 3 * report.lower_bound as u128);
        assert_eq!(report.id.as_deref(), Some("u-11"));
    }

    #[test]
    fn tiny_instances_are_proven_optimal() {
        let inst = Instance::from_classes(2, &[vec![4, 3], vec![5], vec![2, 2]]).unwrap();
        let report = Engine::default().solve_instance(&inst);
        assert!(report.proven_optimal);
        assert_eq!(
            report.certified_horizon, report.makespan,
            "exact horizon is OPT"
        );
        assert!(report.runs.iter().any(|r| r.solver == SolverKind::Exact
            && r.status == RunStatus::Completed
            && r.nodes.is_some()));
    }

    #[test]
    fn sequential_and_parallel_portfolios_agree() {
        let engine_par = Engine::new(EngineConfig::default());
        let engine_seq = Engine::new(EngineConfig {
            parallel_portfolio: false,
            ..EngineConfig::default()
        });
        for seed in 0..4 {
            let inst = msrs_gen::photolithography(seed, 3, 9, 6);
            let a = engine_par.solve_instance(&inst);
            let b = engine_seq.solve_instance(&inst);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.winner, b.winner);
            assert_eq!(a.certified_horizon, b.certified_horizon);
        }
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let reqs: Vec<SolveRequest> = (0..24)
            .map(|seed| {
                SolveRequest::with_id(
                    format!("u-{seed}"),
                    msrs_gen::uniform(seed, 3, 30, 8, 1, 40),
                )
            })
            .collect();
        let one = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
        .solve_batch(&reqs);
        let many = Engine::new(EngineConfig {
            threads: 8,
            ..EngineConfig::default()
        })
        .solve_batch(&reqs);
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.winner, b.winner);
            assert_eq!(a.certified_horizon, b.certified_horizon);
            assert_eq!(a.schedule, b.schedule);
        }
    }

    /// Parity-gap partition (see [`msrs_gen::parity_gap_partition`]):
    /// OPT = T + 1, the exact proof must sweep beyond 10⁸ nodes — minutes
    /// of work, with no class symmetry to exploit.
    fn hard_exact_instance() -> Instance {
        msrs_gen::parity_gap_partition(21)
    }

    #[test]
    fn deadline_bounds_the_exact_member_runtime() {
        let deadline = Duration::from_millis(50);
        let engine = Engine::new(EngineConfig {
            deadline: Some(deadline),
            exact: ExactPolicy {
                max_jobs: 32,
                max_classes: 32,
                max_nodes: u64::MAX,
            },
            ..EngineConfig::default()
        });
        let inst = hard_exact_instance();
        let started = Instant::now();
        let report = engine.solve_instance(&inst);
        let elapsed = started.elapsed();
        // Without in-run cancellation the exact member would run for
        // seconds (its node budget is unbounded); with it, the whole
        // portfolio lands within deadline + scheduling slack. The slack is
        // generous for loaded CI machines — the regression this guards
        // against is a multi-second overshoot.
        assert!(
            elapsed < Duration::from_secs(3),
            "deadline overshoot: {elapsed:?}"
        );
        let exact = report
            .runs
            .iter()
            .find(|r| r.solver == SolverKind::Exact)
            .expect("exact member planned");
        assert_eq!(exact.status, RunStatus::TimedOut);
        // Overshoot-free wall time: the member's own clock stopped near the
        // deadline, far below what the full proof needs.
        assert!(
            exact.wall_micros < 3_000_000,
            "timed-out member reports {} µs",
            exact.wall_micros
        );
        // A certified schedule is still delivered by the approximations.
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
        assert!(report.makespan <= report.certified_horizon);
        assert!(!report.proven_optimal);
    }

    #[test]
    fn deadline_bounds_the_sequential_path_too() {
        let engine = Engine::new(EngineConfig {
            deadline: Some(Duration::from_millis(40)),
            parallel_portfolio: false,
            exact: ExactPolicy {
                max_jobs: 32,
                max_classes: 32,
                max_nodes: u64::MAX,
            },
            ..EngineConfig::default()
        });
        let inst = hard_exact_instance();
        let started = Instant::now();
        let report = engine.solve_instance(&inst);
        assert!(started.elapsed() < Duration::from_secs(3));
        assert!(report.runs.iter().any(|r| r.status == RunStatus::TimedOut));
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
    }

    #[test]
    fn deadline_always_returns_a_schedule() {
        let engine = Engine::new(EngineConfig {
            deadline: Some(Duration::ZERO),
            ..EngineConfig::default()
        });
        let inst = msrs_gen::uniform(5, 4, 80, 12, 1, 60);
        let report = engine.solve_instance(&inst);
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
        assert!(report.makespan <= report.certified_horizon);
    }

    #[test]
    fn absurdly_large_deadline_neither_panics_nor_times_out() {
        // `Instant + Duration::from_millis(u64::MAX)` would overflow; such
        // a deadline can never fire and must degrade to "no deadline".
        let engine = Engine::new(EngineConfig {
            deadline: Some(Duration::from_millis(u64::MAX)),
            ..EngineConfig::default()
        });
        let inst = msrs_gen::uniform(5, 4, 30, 8, 1, 40);
        let report = engine.solve_instance(&inst);
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
        assert!(report.runs.iter().all(|r| r.status != RunStatus::TimedOut));
    }

    #[test]
    fn trivial_instance_short_circuits() {
        let inst = Instance::from_classes(4, &[vec![7], vec![3, 3]]).unwrap();
        let report = Engine::default().solve_instance(&inst);
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.winner, SolverKind::FiveThirds);
        assert_eq!(report.makespan, 7, "one machine per class is optimal");
    }
}
