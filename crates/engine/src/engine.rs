//! The engine: parallel portfolio/batch execution with certified selection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use msrs_core::{validate, Instance, Schedule, Time};
use msrs_exact::SolveLimits;
use msrs_ptas::EptasConfig;

use crate::portfolio::{plan, Portfolio, SolverKind};
use crate::profile::{classify, InstanceProfile};
use crate::report::{RunStatus, SolveReport, SolveRequest, SolverRun};

/// When the exact branch-and-bound is planned and how hard it tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactPolicy {
    /// Plan the exact solver only when `n ≤ max_jobs`.
    pub max_jobs: usize,
    /// … and the non-empty class count is `≤ max_classes`.
    pub max_classes: usize,
    /// Node budget; exhaustion yields [`RunStatus::Exhausted`].
    pub max_nodes: u64,
}

impl Default for ExactPolicy {
    fn default() -> Self {
        // Tied to the classifier's Tiny tier so `InstanceProfile.tier` and
        // the planned portfolio agree by construction.
        ExactPolicy {
            max_jobs: crate::profile::TINY_MAX_JOBS,
            max_classes: crate::profile::TINY_MAX_CLASSES,
            max_nodes: 3_000_000,
        }
    }
}

/// When the EPTAS is planned and with which parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptasPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Plan the EPTAS only when `n ≤ max_jobs`.
    pub max_jobs: usize,
    /// … and `m ≤ max_machines` (the engine uses the fixed-`m` variant so
    /// the schedule stays valid for the *original* machine count).
    pub max_machines: usize,
    /// `ε = 1/eps_k`.
    pub eps_k: u64,
    /// Node budget per layered decision.
    pub node_budget: u64,
}

impl Default for EptasPolicy {
    fn default() -> Self {
        // Tied to the classifier's Small tier (see ExactPolicy).
        EptasPolicy {
            enabled: true,
            max_jobs: crate::profile::SMALL_MAX_JOBS,
            max_machines: crate::profile::SMALL_MAX_MACHINES,
            eps_k: 3,
            node_budget: 300_000,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for batch solving; `0` = available parallelism.
    pub threads: usize,
    /// Run portfolio members of a *single* [`Engine::solve`] on their own
    /// threads (batches always parallelize across instances instead, so
    /// workers are never oversubscribed).
    pub parallel_portfolio: bool,
    /// Optional wall-clock deadline per instance. Members still running when
    /// it fires are reported [`RunStatus::TimedOut`] and their results
    /// discarded; the first member (the `O(|I|)` 5/3-approximation) is always
    /// awaited so a report always carries a valid schedule. **Opt-in
    /// nondeterminism** — leave `None` for bit-reproducible runs.
    pub deadline: Option<Duration>,
    /// Include the prior-work baselines in portfolios.
    pub run_baselines: bool,
    /// Exact-solver policy.
    pub exact: ExactPolicy,
    /// EPTAS policy.
    pub eptas: EptasPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            parallel_portfolio: true,
            deadline: None,
            run_baselines: true,
            exact: ExactPolicy::default(),
            eptas: EptasPolicy::default(),
        }
    }
}

impl EngineConfig {
    fn effective_threads(&self, work_items: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.clamp(1, work_items.max(1))
    }
}

/// The portfolio orchestrator. Construction is cheap; the engine is
/// stateless between calls and `Sync`, so one instance can serve many
/// threads.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    cfg: EngineConfig,
}

/// Everything a finished member hands back.
struct MemberOutcome {
    status: RunStatus,
    schedule: Option<Schedule>,
    makespan: Option<Time>,
    certified_horizon: Option<Time>,
    nodes: Option<u64>,
    wall_micros: u64,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Solves one request with the planned portfolio (parallel across
    /// members when [`EngineConfig::parallel_portfolio`] is set).
    pub fn solve(&self, req: &SolveRequest) -> SolveReport {
        let profile = classify(&req.instance);
        let portfolio = plan(&profile, &self.cfg);
        if self.cfg.parallel_portfolio && portfolio.members.len() > 1 {
            self.run_parallel(req, &profile, &portfolio)
        } else {
            self.run_sequential(req, &profile, &portfolio)
        }
    }

    /// Convenience: solve a bare instance.
    pub fn solve_instance(&self, inst: &Instance) -> SolveReport {
        self.solve(&SolveRequest::new(inst.clone()))
    }

    /// Solves a batch in parallel across worker threads. Reports come back
    /// in request order, and — with no deadline configured — every field
    /// except the `wall_micros` timings is identical regardless of thread
    /// count: work distribution only decides *which worker* computes a
    /// report, never its content.
    pub fn solve_batch(&self, reqs: &[SolveRequest]) -> Vec<SolveReport> {
        let threads = self.cfg.effective_threads(reqs.len());
        if threads <= 1 || reqs.len() <= 1 {
            return reqs.iter().map(|r| self.solve_one_worker(r)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SolveReport>>> =
            reqs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= reqs.len() {
                        break;
                    }
                    let report = self.solve_one_worker(&reqs[i]);
                    *slots[i].lock().expect("result slot") = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every index was processed")
            })
            .collect()
    }

    /// Batch worker path: sequential portfolio (parallelism lives at the
    /// instance level there).
    fn solve_one_worker(&self, req: &SolveRequest) -> SolveReport {
        let profile = classify(&req.instance);
        let portfolio = plan(&profile, &self.cfg);
        self.run_sequential(req, &profile, &portfolio)
    }

    fn run_sequential(
        &self,
        req: &SolveRequest,
        profile: &InstanceProfile,
        portfolio: &Portfolio,
    ) -> SolveReport {
        let started = Instant::now();
        let mut outcomes: Vec<(SolverKind, MemberOutcome)> = Vec::new();
        for (idx, &kind) in portfolio.members.iter().enumerate() {
            // Honour the deadline between members; the first member is always
            // run so the report carries a schedule.
            let timed_out = idx > 0 && self.cfg.deadline.is_some_and(|d| started.elapsed() >= d);
            if timed_out {
                outcomes.push((
                    kind,
                    MemberOutcome {
                        status: RunStatus::TimedOut,
                        schedule: None,
                        makespan: None,
                        certified_horizon: None,
                        nodes: None,
                        wall_micros: 0,
                    },
                ));
                continue;
            }
            outcomes.push((kind, run_solver(kind, &req.instance, &self.cfg)));
        }
        assemble(req, profile, outcomes, started)
    }

    fn run_parallel(
        &self,
        req: &SolveRequest,
        profile: &InstanceProfile,
        portfolio: &Portfolio,
    ) -> SolveReport {
        let started = Instant::now();
        let (tx, rx) = mpsc::channel::<(usize, MemberOutcome)>();
        for (idx, &kind) in portfolio.members.iter().enumerate() {
            let tx = tx.clone();
            let inst = req.instance.clone();
            let cfg = self.cfg.clone();
            // Detached threads: on deadline the engine stops *waiting*; the
            // budget-bounded member finishes in the background and its send
            // lands in a closed channel. Panics inside a member are caught
            // and surfaced as `Invalid` outcomes so a bug in one solver is
            // reported instead of masquerading as a timeout.
            std::thread::spawn(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_solver(kind, &inst, &cfg)
                }))
                .unwrap_or_else(|payload| {
                    let reason = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "solver panicked".into());
                    MemberOutcome {
                        status: RunStatus::Invalid(format!("panic: {reason}")),
                        schedule: None,
                        makespan: None,
                        certified_horizon: None,
                        nodes: None,
                        wall_micros: 0,
                    }
                });
                let _ = tx.send((idx, outcome));
            });
        }
        drop(tx);
        let mut collected: Vec<Option<MemberOutcome>> =
            portfolio.members.iter().map(|_| None).collect();
        // The deadline may only cut collection short once a *certifying*
        // member (one carrying a horizon — the 5/3 at minimum) has landed;
        // otherwise assemble() would have neither a schedule nor a
        // certificate to report.
        let mut certified_any = false;
        loop {
            let remaining = match self.cfg.deadline {
                None => None,
                Some(d) => {
                    if certified_any && started.elapsed() >= d {
                        break;
                    }
                    Some(
                        d.saturating_sub(started.elapsed())
                            .max(Duration::from_millis(1)),
                    )
                }
            };
            let msg = match remaining {
                // No deadline (or no certifying member yet): block for the
                // next member.
                None => rx.recv().ok(),
                Some(_) if !certified_any => rx.recv().ok(),
                Some(remaining) => match rx.recv_timeout(remaining) {
                    Ok(msg) => Some(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                },
            };
            let Some((idx, outcome)) = msg else { break };
            certified_any |=
                outcome.status == RunStatus::Completed && outcome.certified_horizon.is_some();
            collected[idx] = Some(outcome);
            if collected.iter().all(Option::is_some) {
                break;
            }
        }
        let outcomes: Vec<(SolverKind, MemberOutcome)> = portfolio
            .members
            .iter()
            .zip(collected)
            .map(|(&kind, slot)| {
                let outcome = slot.unwrap_or(MemberOutcome {
                    status: RunStatus::TimedOut,
                    schedule: None,
                    makespan: None,
                    certified_horizon: None,
                    nodes: None,
                    wall_micros: 0,
                });
                (kind, outcome)
            })
            .collect();
        assemble(req, profile, outcomes, started)
    }
}

/// A member's raw answer: schedule + optional certified horizon, or a
/// terminal status (budget exhaustion).
type RawAnswer = Result<(Schedule, Option<Time>), RunStatus>;

/// Runs one portfolio member, re-validating its output (defense in depth —
/// the engine never trusts a schedule it did not check).
fn run_solver(kind: SolverKind, inst: &Instance, cfg: &EngineConfig) -> MemberOutcome {
    let started = Instant::now();
    let (result, nodes): (RawAnswer, Option<u64>) = match kind {
        SolverKind::FiveThirds => {
            let r = msrs_approx::five_thirds(inst);
            (Ok((r.schedule, Some(r.horizon))), None)
        }
        SolverKind::ThreeHalves => {
            let r = msrs_approx::three_halves(inst);
            (Ok((r.schedule, Some(r.horizon))), None)
        }
        SolverKind::HebrardGreedy => {
            let r = msrs_approx::baselines::hebrard_greedy(inst);
            (Ok((r.schedule, None)), None)
        }
        SolverKind::ListScheduler => {
            let r = msrs_approx::baselines::list_scheduler(inst);
            (Ok((r.schedule, None)), None)
        }
        SolverKind::MergedLpt => {
            let r = msrs_approx::baselines::merged_lpt(inst);
            (Ok((r.schedule, None)), None)
        }
        SolverKind::Exact => {
            match msrs_exact::optimal(
                inst,
                SolveLimits {
                    max_nodes: cfg.exact.max_nodes,
                },
            ) {
                // A completed exact run proves its makespan optimal, so
                // the makespan itself is the tightest possible horizon.
                Some(res) => (Ok((res.schedule, Some(res.makespan))), Some(res.nodes)),
                None => (Err(RunStatus::Exhausted), None),
            }
        }
        SolverKind::Eptas => {
            let out = msrs_ptas::eptas_fixed_m(
                inst,
                EptasConfig {
                    eps_k: cfg.eptas.eps_k,
                    node_budget: cfg.eptas.node_budget,
                },
            );
            // The engine treats the EPTAS as a high-quality heuristic
            // probe: its (1+O(ε)) bound is relative to OPT with an
            // implementation-dependent constant, so no T-relative
            // horizon is certified here.
            (Ok((out.schedule, None)), None)
        }
    };
    let outcome = match result {
        Err(status) => MemberOutcome {
            status,
            schedule: None,
            makespan: None,
            certified_horizon: None,
            nodes,
            wall_micros: 0,
        },
        Ok((schedule, certified_horizon)) => match validate(inst, &schedule) {
            Ok(()) => {
                let makespan = schedule.makespan(inst);
                MemberOutcome {
                    status: RunStatus::Completed,
                    schedule: Some(schedule),
                    makespan: Some(makespan),
                    certified_horizon,
                    nodes,
                    wall_micros: 0,
                }
            }
            Err(e) => MemberOutcome {
                status: RunStatus::Invalid(e.to_string()),
                schedule: None,
                makespan: None,
                certified_horizon: None,
                nodes,
                wall_micros: 0,
            },
        },
    };
    MemberOutcome {
        wall_micros: started.elapsed().as_micros() as u64,
        ..outcome
    }
}

/// Best-of selection and report assembly.
fn assemble(
    req: &SolveRequest,
    profile: &InstanceProfile,
    outcomes: Vec<(SolverKind, MemberOutcome)>,
    started: Instant,
) -> SolveReport {
    // Winner: least makespan among completed members; ties keep the earliest
    // (canonical) member, making selection deterministic.
    let mut winner: Option<(SolverKind, Time)> = None;
    // Certificate: tightest a-priori horizon among completed certifying runs.
    let mut certificate: Option<(SolverKind, Time)> = None;
    let mut proven_optimal = false;
    for (kind, outcome) in &outcomes {
        if outcome.status != RunStatus::Completed {
            continue;
        }
        let makespan = outcome.makespan.expect("completed runs carry a makespan");
        if winner.is_none_or(|(_, best)| makespan < best) {
            winner = Some((*kind, makespan));
        }
        if let Some(h) = outcome.certified_horizon {
            if certificate.is_none_or(|(_, best)| h < best) {
                certificate = Some((*kind, h));
            }
        }
        if *kind == SolverKind::Exact {
            proven_optimal = true;
        }
    }
    // Both expectations hold whenever the certifying 5/3 member completed
    // (it always participates, is total, and carries a horizon); if it did
    // not, name every member's terminal status instead of a bare unwrap.
    let member_states = || -> String {
        outcomes
            .iter()
            .map(|(k, o)| format!("{}={}", k.name(), o.status.label()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let (winner_kind, makespan) = winner.unwrap_or_else(|| {
        panic!(
            "no portfolio member produced a valid schedule ({})",
            member_states()
        )
    });
    let (certified_by, certified_horizon) = certificate
        .unwrap_or_else(|| panic!("no certifying member completed ({})", member_states()));
    // Meeting the lower bound is an optimality proof in its own right
    // (T ≤ OPT ≤ makespan = T), independent of the exact member.
    let proven_optimal = proven_optimal || makespan == profile.lower_bound;
    let schedule = outcomes
        .iter()
        .find(|(kind, o)| *kind == winner_kind && o.status == RunStatus::Completed)
        .and_then(|(_, o)| o.schedule.clone())
        .expect("winner carries its schedule");
    let runs = outcomes
        .into_iter()
        .map(|(solver, o)| SolverRun {
            solver,
            status: o.status,
            makespan: o.makespan,
            certified_horizon: o.certified_horizon,
            nodes: o.nodes,
            wall_micros: o.wall_micros,
        })
        .collect();
    SolveReport {
        id: req.id.clone(),
        jobs: profile.jobs,
        machines: profile.machines,
        classes: profile.classes,
        lower_bound: profile.lower_bound,
        makespan,
        winner: winner_kind,
        certified_horizon,
        certified_by,
        proven_optimal,
        wall_micros: started.elapsed().as_micros() as u64,
        runs,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_produces_a_certified_valid_schedule() {
        let inst = msrs_gen::uniform(11, 4, 60, 10, 1, 50);
        let engine = Engine::default();
        let report = engine.solve(&SolveRequest::with_id("u-11", inst.clone()));
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
        assert_eq!(report.schedule.makespan(&inst), report.makespan);
        assert!(report.makespan <= report.certified_horizon);
        // The 3/2 algorithm always participates on non-trivial instances, so
        // the certificate is at most ⌊1.5·T⌋.
        assert!(report.certified_horizon as u128 * 2 <= 3 * report.lower_bound as u128);
        assert_eq!(report.id.as_deref(), Some("u-11"));
    }

    #[test]
    fn tiny_instances_are_proven_optimal() {
        let inst = Instance::from_classes(2, &[vec![4, 3], vec![5], vec![2, 2]]).unwrap();
        let report = Engine::default().solve_instance(&inst);
        assert!(report.proven_optimal);
        assert_eq!(
            report.certified_horizon, report.makespan,
            "exact horizon is OPT"
        );
        assert!(report.runs.iter().any(|r| r.solver == SolverKind::Exact
            && r.status == RunStatus::Completed
            && r.nodes.is_some()));
    }

    #[test]
    fn sequential_and_parallel_portfolios_agree() {
        let engine_par = Engine::new(EngineConfig::default());
        let engine_seq = Engine::new(EngineConfig {
            parallel_portfolio: false,
            ..EngineConfig::default()
        });
        for seed in 0..4 {
            let inst = msrs_gen::photolithography(seed, 3, 9, 6);
            let a = engine_par.solve_instance(&inst);
            let b = engine_seq.solve_instance(&inst);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.winner, b.winner);
            assert_eq!(a.certified_horizon, b.certified_horizon);
        }
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let reqs: Vec<SolveRequest> = (0..24)
            .map(|seed| {
                SolveRequest::with_id(
                    format!("u-{seed}"),
                    msrs_gen::uniform(seed, 3, 30, 8, 1, 40),
                )
            })
            .collect();
        let one = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
        .solve_batch(&reqs);
        let many = Engine::new(EngineConfig {
            threads: 8,
            ..EngineConfig::default()
        })
        .solve_batch(&reqs);
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.winner, b.winner);
            assert_eq!(a.certified_horizon, b.certified_horizon);
            assert_eq!(a.schedule, b.schedule);
        }
    }

    #[test]
    fn deadline_always_returns_a_schedule() {
        let engine = Engine::new(EngineConfig {
            deadline: Some(Duration::ZERO),
            ..EngineConfig::default()
        });
        let inst = msrs_gen::uniform(5, 4, 80, 12, 1, 60);
        let report = engine.solve_instance(&inst);
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
        assert!(report.makespan <= report.certified_horizon);
    }

    #[test]
    fn trivial_instance_short_circuits() {
        let inst = Instance::from_classes(4, &[vec![7], vec![3, 3]]).unwrap();
        let report = Engine::default().solve_instance(&inst);
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.winner, SolverKind::FiveThirds);
        assert_eq!(report.makespan, 7, "one machine per class is optimal");
    }
}
