//! End-to-end engine coverage: the portfolio over every generator family,
//! certificate soundness, batch determinism at acceptance scale, and the
//! `msrs` CLI binary.

use msrs_core::validate;
use msrs_engine::{Engine, EngineConfig, RunStatus, SolveRequest, SolverKind};

/// One instance per generator family, across several seeds and machine
/// counts: every report's schedule re-validates and respects the advertised
/// certificate chain `makespan ≤ certified_horizon ≤ ⌊(3/2)·T⌋` (the last
/// step whenever the 3/2 algorithm participated).
#[test]
fn portfolio_over_every_family_validates_and_certifies() {
    let engine = Engine::default();
    for spec in msrs_engine::families::FAMILIES {
        for (seed, m) in [(1u64, 2usize), (2, 3), (3, 4), (4, 8)] {
            let inst = (spec.generate)(seed, m);
            let report = engine.solve(&SolveRequest::with_id(
                format!("{}-{seed}-{m}", spec.name),
                inst.clone(),
            ));
            assert_eq!(
                validate(&inst, &report.schedule),
                Ok(()),
                "{}: schedule must re-validate",
                spec.name
            );
            assert_eq!(report.schedule.makespan(&inst), report.makespan);
            assert!(
                report.makespan <= report.certified_horizon,
                "{}: makespan {} exceeds certificate {}",
                spec.name,
                report.makespan,
                report.certified_horizon
            );
            let ran_three_halves = report
                .runs
                .iter()
                .any(|r| r.solver == SolverKind::ThreeHalves && r.status == RunStatus::Completed);
            if ran_three_halves {
                assert!(
                    report.certified_horizon as u128 * 2 <= 3 * report.lower_bound as u128,
                    "{}: certificate {} looser than 1.5·T (T = {})",
                    spec.name,
                    report.certified_horizon,
                    report.lower_bound
                );
            }
            // The winner is never worse than the certifying approximations.
            for run in &report.runs {
                if run.status == RunStatus::Completed {
                    assert!(report.makespan <= run.makespan.unwrap());
                }
            }
        }
    }
}

/// Acceptance scale: a ≥100-instance batch over all families runs in
/// parallel, is deterministic across thread counts, and every report honours
/// its certificate.
#[test]
fn batch_of_100_plus_is_deterministic_and_certified() {
    let mut reqs: Vec<SolveRequest> = Vec::new();
    for spec in msrs_engine::families::FAMILIES {
        for seed in 0..15u64 {
            reqs.push(SolveRequest::with_id(
                format!("{}-{seed}", spec.name),
                (spec.generate)(seed, 4),
            ));
        }
    }
    assert!(reqs.len() >= 100, "corpus has {} instances", reqs.len());

    let solo = Engine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    })
    .solve_batch(&reqs);
    let wide = Engine::new(EngineConfig {
        threads: 8,
        ..EngineConfig::default()
    })
    .solve_batch(&reqs);

    assert_eq!(solo.len(), reqs.len());
    for ((req, a), b) in reqs.iter().zip(&solo).zip(&wide) {
        // Determinism: identical selection, certificates, and schedules.
        assert_eq!(a.id, b.id);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.certified_horizon, b.certified_horizon);
        assert_eq!(a.certified_by, b.certified_by);
        assert_eq!(a.schedule, b.schedule);
        // Certificate soundness on the original instance.
        assert_eq!(validate(&req.instance, &a.schedule), Ok(()));
        assert!(a.makespan <= a.certified_horizon);
    }
}

/// The JSON report of a batch round-trips through the JSONL corpus tooling
/// and stays self-consistent.
#[test]
fn reports_serialize_with_consistent_fields() {
    let engine = Engine::default();
    let inst = msrs_gen::zipf_classes(3, 3, 40, 8, 1, 30);
    let report = engine.solve(&SolveRequest::with_id("z-3", inst));
    let json = report.to_json();
    assert_eq!(json.get("id").and_then(|j| j.as_str()), Some("z-3"));
    assert_eq!(
        json.get("makespan").and_then(|j| j.as_u64()),
        Some(report.makespan)
    );
    assert_eq!(
        json.get("winner").and_then(|j| j.as_str()),
        Some(report.winner.name())
    );
    let runs = json
        .get("runs")
        .and_then(|j| j.as_arr())
        .expect("runs array");
    assert_eq!(runs.len(), report.runs.len());
    // Parse back through the generic JSON parser (wire-format sanity).
    let reparsed = msrs_engine::json::Json::parse(&json.to_string()).expect("valid JSON");
    assert_eq!(reparsed, json);
}

/// Drives the real `msrs` binary: gen → batch → reports, plus single solve.
#[test]
fn cli_gen_batch_solve_round_trip() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_msrs");
    let dir = std::env::temp_dir().join(format!("msrs-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let corpus = dir.join("corpus.jsonl");
    let reports = dir.join("reports.jsonl");

    let gen = Command::new(bin)
        .args(["gen", "--family", "all", "--count", "15", "--machines", "4"])
        .args(["--seed", "7", "--out", corpus.to_str().unwrap()])
        .output()
        .expect("run msrs gen");
    assert!(
        gen.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );
    let corpus_text = std::fs::read_to_string(&corpus).expect("corpus written");
    let n = corpus_text.lines().count();
    assert!(n >= 100, "gen produced {n} lines");

    let batch = Command::new(bin)
        .args(["batch", "--input", corpus.to_str().unwrap()])
        .args(["--threads", "4", "--out", reports.to_str().unwrap()])
        .output()
        .expect("run msrs batch");
    assert!(
        batch.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&batch.stderr)
    );
    let report_text = std::fs::read_to_string(&reports).expect("reports written");
    assert_eq!(report_text.lines().count(), n, "one report per instance");
    for line in report_text.lines() {
        let v = msrs_engine::json::Json::parse(line).expect("report line is JSON");
        let makespan = v
            .get("makespan")
            .and_then(|j| j.as_u64())
            .expect("makespan");
        let horizon = v
            .get("certified_horizon")
            .and_then(|j| j.as_u64())
            .expect("horizon");
        assert!(makespan <= horizon, "uncertified report line: {line}");
    }

    // Single-instance solve over stdin-free JSON input.
    let single = dir.join("one.jsonl");
    std::fs::write(&single, corpus_text.lines().next().unwrap()).expect("write single");
    let solve = Command::new(bin)
        .args(["solve", "--input", single.to_str().unwrap(), "--json"])
        .output()
        .expect("run msrs solve");
    assert!(solve.status.success());
    let v = msrs_engine::json::Json::parse(String::from_utf8_lossy(&solve.stdout).trim())
        .expect("solve --json output");
    assert!(v.get("winner").is_some());

    std::fs::remove_dir_all(&dir).ok();
}
