//! Proof that the warmed serving data plane is allocation-free: a counting
//! `#[global_allocator]` wrapper (test binary only) asserts **zero heap
//! allocations** across a full cache-hit-only pass of the streaming serve
//! loop — decode, canonical fingerprint, cache probe, and report
//! serialization all run out of reused buffers. Telemetry recording is live
//! throughout (it cannot be disabled), and the test reads the registry's
//! stage counters around the measured window to prove the instruments were
//! actually firing while the allocation count stayed at zero.
//!
//! This file deliberately contains a single test: the allocator counter is
//! process-global, and a concurrently running sibling test would pollute
//! the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (alloc, alloc_zeroed, realloc) passed through to
/// the system allocator.
struct CountingAllocator {
    allocations: AtomicU64,
}

impl CountingAllocator {
    fn count(&self) -> u64 {
        self.allocations.load(Ordering::SeqCst)
    }
}

// SAFETY: defers entirely to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator {
    allocations: AtomicU64::new(0),
};

#[test]
fn warmed_cache_hit_serve_loop_performs_zero_allocations() {
    use msrs_engine::stream::JsonlServer;
    use msrs_engine::{jsonl, CacheStore, Engine, EngineConfig, SolveRequest};

    // A duplicate-heavy production-shaped corpus: every line is one of
    // four distinct canonical forms (ids vary — ids are not part of the
    // canonical form), so after one pass every line is a cache hit.
    let distinct: Vec<_> = (0..4)
        .map(|seed| msrs_gen::uniform(seed, 3, 12, 3, 1, 40))
        .collect();
    let mut corpus = String::new();
    for i in 0..256 {
        let req = SolveRequest::with_id(format!("req-{i}"), distinct[i % distinct.len()].clone());
        corpus.push_str(&jsonl::write_instance_line(
            req.id.as_deref(),
            &req.instance,
        ));
        corpus.push('\n');
    }

    let config = EngineConfig {
        threads: 1,
        cache_capacity: 1024,
        deadline: None,
        ..EngineConfig::default()
    };
    let engine = Engine::new(config.clone());

    // Durable persistence must never touch the fast path: attach a cache
    // store so warm-pass inserts stream through the background flusher,
    // then prove the measured hit-only pass still allocates nothing.
    let store_path = std::env::temp_dir().join(format!(
        "msrs-alloc-free-store-{}.mcache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store_path);
    let load = engine
        .attach_cache_store(&store_path)
        .expect("cache store attaches");
    assert_eq!(load.loaded, 0, "fresh store starts empty");

    let mut server = JsonlServer::new();
    let mut sink = std::io::sink();

    // Warm-up: the first pass fills the result cache (all lines are
    // misses → materialized, solved, inserted); the second pass runs the
    // hit path once so every reusable buffer (decoder, canonical scratch,
    // slot table, id arena, report buffer) reaches its steady-state
    // capacity.
    for pass in 0..2 {
        let outcome = server
            .serve(&engine, corpus.as_bytes(), &mut sink, 64)
            .expect("serve");
        assert!(outcome.error.is_none());
        assert_eq!(outcome.stats.instances, 256, "pass {pass}");
    }

    // Let the background flusher drain the warm-pass inserts (one record
    // per distinct canonical form) before opening the measured window. The
    // flusher's work — serializing and appending — allocates, but on its
    // own thread; waiting here keeps even that off the window. Appends hit
    // the file unbuffered, so four visible records mean the only remaining
    // flusher work is an fsync (allocation-free) before it parks.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let records = std::fs::read_to_string(&store_path)
            .map(|t| t.lines().filter(|l| l.starts_with("{\"fp\":")).count())
            .unwrap_or(0);
        if records >= distinct.len() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "flusher never persisted the warm-pass inserts ({records}/{})",
            distinct.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Telemetry counters read *outside* the measured window (registry reads
    // are allocation-free anyway, but keeping them outside makes the window
    // exactly one serve pass).
    let reg = msrs_engine::telemetry::registry();
    let decode_before = reg.stage(msrs_engine::telemetry::Stage::Decode).count();
    let lookup_before = reg
        .stage(msrs_engine::telemetry::Stage::CacheLookup)
        .count();
    let fast_path_before = reg.serve_fast_path_total.get();

    // Measured pass: 256 instances end to end, zero allocations — with
    // telemetry recording enabled (it always is).
    let before = ALLOCATOR.count();
    let outcome = server
        .serve(&engine, corpus.as_bytes(), &mut sink, 64)
        .expect("serve");
    let allocations = ALLOCATOR.count() - before;

    assert!(outcome.error.is_none());
    assert_eq!(outcome.stats.instances, 256);
    assert_eq!(
        outcome.stats.fast_path_hits, 256,
        "the measured pass must be served from cache alone"
    );
    assert_eq!(outcome.stats.max_resident, 0, "no request materialized");
    assert_eq!(
        allocations, 0,
        "warmed cache-hit serve loop allocated {allocations} times for 256 instances"
    );
    // The zero-allocation window really did record telemetry: one decode
    // span and one cache probe per line, one fast-path count per line.
    let decode_delta = reg.stage(msrs_engine::telemetry::Stage::Decode).count() - decode_before;
    let lookup_delta = reg
        .stage(msrs_engine::telemetry::Stage::CacheLookup)
        .count()
        - lookup_before;
    assert_eq!(decode_delta, 256, "decode stage recorded per line");
    assert_eq!(lookup_delta, 256, "cache probe recorded per line");
    assert_eq!(reg.serve_fast_path_total.get() - fast_path_before, 256);

    // The store behind that zero-allocation window is real: dropping the
    // engine joins the flusher, and a fresh load returns exactly one
    // verified record per distinct canonical form.
    drop(server);
    drop(engine);
    let (_store, entries, stats) =
        CacheStore::open(&store_path, config.content_fingerprint()).expect("store reopens");
    assert_eq!(stats.loaded, distinct.len() as u64);
    assert_eq!((stats.errors, stats.segments_quarantined), (0, 0));
    assert_eq!(entries.len(), distinct.len());
    let _ = std::fs::remove_file(&store_path);
}
