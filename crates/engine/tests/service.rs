//! End-to-end tests of the `msrs serve` TCP service layer.
//!
//! * **bit-identity** — N concurrent sessions pipelining the same corpus
//!   each receive, in strict request order, report lines bit-identical to
//!   a sequential `msrs batch` run over that corpus (modulo the
//!   `wall_micros` timings and the `cache_hit` provenance flag), across
//!   engine thread counts 1, 2, 8;
//! * **admission control** — with `max_inflight = 1` a request arriving
//!   while another is being solved is shed with a structured
//!   `overloaded` line, the slot is not consumed, and a retry after the
//!   slow request completes is served normally;
//! * **graceful shutdown** — a request in flight when shutdown begins
//!   still delivers its report before the session closes;
//! * **observability** — `#stats` answers with one parseable JSON
//!   snapshot line, the HTTP metrics listener serves Prometheus and JSON
//!   renderings, parse errors are answered in-line without ending the
//!   session, and unknown `#` control lines are ignored;
//! * **session hygiene** — an idle session is closed with a structured
//!   `idle_timeout` line after `--idle-timeout-ms`, a session that served
//!   `--max-requests-per-session` requests is closed with a
//!   `session_limit` line, and a peer that hangs up mid-conversation ends
//!   its session cleanly (counted, never a session-thread error).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use msrs_engine::json::Json;
use msrs_engine::service::{serve, ServeConfig};
use msrs_engine::stream::JsonlServer;
use msrs_engine::{jsonl, telemetry, Engine, EngineConfig, ExactPolicy};

/// The admission gauge and serve counters are process-global; serializing
/// the tests makes each test's server the only one moving them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn engine(threads: usize, cache_capacity: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        cache_capacity,
        ..EngineConfig::default()
    })
}

/// An engine whose solve of [`slow_line`]'s instance reliably takes the
/// full `deadline`: `parity_gap_partition(21)` has no perfect split (odd
/// half-sum) and all-distinct sizes, so the exact branch-and-bound —
/// given an effectively unbounded node budget — runs until the
/// cooperative deadline cancels it. The deadline also bypasses the
/// result cache, so repeats stay slow.
fn slow_engine(deadline: Duration) -> Engine {
    Engine::new(EngineConfig {
        threads: 1,
        cache_capacity: 0,
        deadline: Some(deadline),
        exact: ExactPolicy {
            max_jobs: 64,
            max_classes: 64,
            max_nodes: u64::MAX,
        },
        ..EngineConfig::default()
    })
}

fn slow_line() -> String {
    jsonl::write_instance_line(Some("slow"), &msrs_gen::parity_gap_partition(21))
}

fn tiny_line(id: &str) -> String {
    jsonl::write_instance_line(Some(id), &msrs_gen::uniform(7, 2, 6, 2, 1, 9))
}

/// A small corpus with planted duplicates (traffic seeds collapse into
/// `dup_factor`-sized canonical buckets) so concurrent sessions exercise
/// cache hits and misses, not just fresh solves.
fn corpus_lines() -> Vec<String> {
    (0..12u64)
        .map(|seed| {
            jsonl::write_instance_line(Some(&format!("c{seed}")), &msrs_gen::traffic(seed, 3, 4))
        })
        .collect()
}

/// Zeroes every `wall_micros` (top-level and nested in `runs`) and
/// normalizes `cache_hit` — the two fields the determinism contract
/// excludes.
fn redact(json: &mut Json) {
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else if k == "cache_hit" {
                    *v = Json::Bool(false);
                } else {
                    redact(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact),
        _ => {}
    }
}

fn redacted(line: &str) -> String {
    let mut json = Json::parse(line).expect("response line parses as JSON");
    redact(&mut json);
    json.to_string()
}

/// Blocks until the admission gauge shows at least one in-flight request
/// (i.e. the server has decoded and admitted the slow request), so the
/// timing-sensitive tests never race the session thread's startup.
fn wait_for_inflight() {
    let t0 = Instant::now();
    while telemetry::registry().serve_inflight.get() < 1 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "request was never admitted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Blocks until no request is in flight. A session writes its response a
/// few instructions *before* releasing its admission slot, so a reader
/// that immediately fires the next request can still be shed; waiting for
/// the gauge to drop makes post-completion sends deterministic.
fn wait_for_idle() {
    let t0 = Instant::now();
    while telemetry::registry().serve_inflight.get() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "in-flight request never released its slot"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// N concurrent sessions, each pipelining the full corpus, all receive
/// exactly the sequential batch run's report lines, in order.
#[test]
fn concurrent_sessions_match_sequential_batch() {
    let _guard = serialized();
    let lines = corpus_lines();
    let corpus_text = format!("{}\n", lines.join("\n"));
    for threads in [1usize, 2, 8] {
        // Sequential reference on a fresh engine (its own cache).
        let mut ref_out = Vec::new();
        JsonlServer::new()
            .serve(
                &engine(threads, 1024),
                corpus_text.as_bytes(),
                &mut ref_out,
                64,
            )
            .expect("reference batch run");
        let reference: Vec<String> = String::from_utf8(ref_out)
            .expect("utf8 reports")
            .lines()
            .map(redacted)
            .collect();
        assert_eq!(reference.len(), lines.len());

        let handle = serve(engine(threads, 1024), "127.0.0.1:0", ServeConfig::default())
            .expect("server binds");
        let addr = handle.local_addr();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let lines = lines.clone();
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connects");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    // Pipeline every request, then read every response:
                    // responses must come back in request order.
                    for line in &lines {
                        stream.write_all(line.as_bytes()).expect("write");
                        stream.write_all(b"\n").expect("write");
                    }
                    stream.flush().expect("flush");
                    let mut got = Vec::new();
                    for _ in 0..lines.len() {
                        let mut resp = String::new();
                        reader.read_line(&mut resp).expect("read");
                        got.push(redacted(resp.trim()));
                    }
                    got
                })
            })
            .collect();
        let transcripts: Vec<Vec<String>> = clients
            .into_iter()
            .map(|t| t.join().expect("client"))
            .collect();
        handle.begin_shutdown();
        let summary = handle.wait();
        assert_eq!(summary.sessions, 4, "threads {threads}");
        assert_eq!(
            summary.requests,
            4 * lines.len() as u64,
            "threads {threads}"
        );
        assert_eq!(summary.sheds, 0, "no sheds with unlimited in-flight");
        assert_eq!(summary.errors, 0);
        for (client, transcript) in transcripts.iter().enumerate() {
            assert_eq!(
                transcript, &reference,
                "client {client} diverged from sequential batch (threads {threads})"
            );
        }
    }
}

/// With `max_inflight = 1`, a request arriving while the slow solve holds
/// the only slot is shed with an `overloaded` line; once the slot frees,
/// the same client is served.
#[test]
fn overloaded_sheds_above_max_inflight() {
    let _guard = serialized();
    let handle = serve(
        slow_engine(Duration::from_secs(2)),
        "127.0.0.1:0",
        ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr();

    let mut slow = TcpStream::connect(addr).expect("slow client connects");
    let mut slow_reader = BufReader::new(slow.try_clone().expect("clone"));
    slow.write_all(format!("{}\n", slow_line()).as_bytes())
        .expect("write slow request");
    slow.flush().expect("flush");
    wait_for_inflight();

    // The slot is held: a second session's request is shed, not queued.
    let mut fast = TcpStream::connect(addr).expect("fast client connects");
    let mut fast_reader = BufReader::new(fast.try_clone().expect("clone"));
    fast.write_all(format!("{}\n", tiny_line("shed-me")).as_bytes())
        .expect("write shed request");
    fast.flush().expect("flush");
    let mut shed = String::new();
    fast_reader.read_line(&mut shed).expect("read shed line");
    let shed = Json::parse(shed.trim()).expect("shed line parses");
    assert_eq!(
        shed.get("error").and_then(Json::as_str),
        Some("overloaded"),
        "second request must shed while the slot is held"
    );
    assert!(matches!(shed.get("max_inflight"), Some(Json::Num(1))));

    // The slow request still completes and answers.
    let mut slow_resp = String::new();
    slow_reader
        .read_line(&mut slow_resp)
        .expect("read slow report");
    let slow_report = Json::parse(slow_resp.trim()).expect("slow report parses");
    assert_eq!(slow_report.get("id").and_then(Json::as_str), Some("slow"));

    // Shedding did not consume the slot: a retry is served normally.
    wait_for_idle();
    fast.write_all(format!("{}\n", tiny_line("retry")).as_bytes())
        .expect("write retry");
    fast.flush().expect("flush");
    let mut retry = String::new();
    fast_reader
        .read_line(&mut retry)
        .expect("read retry report");
    let retry = Json::parse(retry.trim()).expect("retry parses");
    assert_eq!(retry.get("id").and_then(Json::as_str), Some("retry"));

    fast.write_all(b"#shutdown\n").expect("write shutdown");
    fast.flush().expect("flush");
    drop((slow, slow_reader, fast, fast_reader));
    let summary = handle.wait();
    assert_eq!(summary.sessions, 2);
    assert_eq!(summary.requests, 2, "slow + retry answered");
    assert_eq!(summary.sheds, 1, "exactly the one overload");
    assert_eq!(summary.errors, 0);
}

/// Graceful shutdown lets the in-flight request finish: the report lands
/// on the wire before the session closes with EOF.
#[test]
fn inflight_request_completes_on_shutdown() {
    let _guard = serialized();
    let handle = serve(
        slow_engine(Duration::from_secs(1)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server binds");
    let addr = handle.local_addr();
    let mut client = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(client.try_clone().expect("clone"));
    client
        .write_all(format!("{}\n", slow_line()).as_bytes())
        .expect("write");
    client.flush().expect("flush");
    wait_for_inflight();

    handle.begin_shutdown();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read report");
    let report = Json::parse(resp.trim()).expect("report parses despite shutdown");
    assert_eq!(report.get("id").and_then(Json::as_str), Some("slow"));
    // …and then the session closes cleanly.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("read EOF"), 0);

    let summary = handle.wait();
    assert_eq!(summary.sessions, 1);
    assert_eq!(summary.requests, 1, "the in-flight request was answered");
    assert_eq!(summary.sheds, 0);
}

/// `#stats`, the HTTP metrics listener, in-session parse errors, and
/// unknown control lines.
#[test]
fn stats_errors_and_control_lines() {
    let _guard = serialized();
    let handle = serve(
        engine(1, 1024),
        "127.0.0.1:0",
        ServeConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr();
    let metrics_addr = handle.metrics_local_addr().expect("metrics listener bound");

    let mut client = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(client.try_clone().expect("clone"));
    let mut send = |line: &str| {
        client
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| client.flush())
            .expect("write line");
    };
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read line");
        line.trim().to_string()
    };

    send(&tiny_line("first"));
    let first = Json::parse(&recv()).expect("report parses");
    assert_eq!(first.get("id").and_then(Json::as_str), Some("first"));

    // One line, one JSON document: the full telemetry snapshot.
    send("#stats");
    let stats_line = recv();
    assert!(Json::parse(&stats_line).is_ok(), "snapshot line parses");
    assert!(stats_line.contains("msrs_requests_total"));
    assert!(stats_line.contains("msrs_serve_sessions_total"));

    // A malformed request answers with a structured error and the
    // session continues.
    send("this is not json");
    let err = Json::parse(&recv()).expect("error line parses");
    assert_eq!(err.get("error").and_then(Json::as_str), Some("parse"));
    assert!(matches!(err.get("line"), Some(Json::Num(_))));

    // Unknown control lines are ignored, like corpus comments.
    send("# just a comment");
    send(&tiny_line("second"));
    let second = Json::parse(&recv()).expect("report parses");
    assert_eq!(second.get("id").and_then(Json::as_str), Some("second"));

    // HTTP metrics: Prometheus by default, JSON when the path says so.
    let http = |path: &str| {
        let mut conn = TcpStream::connect(metrics_addr).expect("metrics connects");
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("GET");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read response");
        response
    };
    let prom = http("/metrics");
    assert!(prom.starts_with("HTTP/1.1 200 OK"));
    assert!(prom.contains("text/plain"));
    assert!(prom.contains("msrs_requests_total"));
    assert!(prom.contains("msrs_serve_sessions_open"));
    let json = http("/stats.json");
    assert!(json.starts_with("HTTP/1.1 200 OK"));
    assert!(json.contains("application/json"));
    assert!(json.contains("msrs_serve_sheds_total"));

    send("#shutdown");
    drop((client, reader));
    let summary = handle.wait();
    assert_eq!(summary.sessions, 1);
    assert_eq!(summary.requests, 2, "two well-formed requests answered");
    assert_eq!(summary.errors, 1, "one parse error answered in-line");
    assert_eq!(summary.sheds, 0);
}

/// A session that goes quiet past the idle timeout is told why and
/// closed; a session that keeps talking is not.
#[test]
fn idle_timeout_closes_session_with_structured_line() {
    let _guard = serialized();
    let idle_before = telemetry::registry().serve_idle_closes_total.get();
    let handle = serve(
        engine(1, 0),
        "127.0.0.1:0",
        ServeConfig {
            idle_timeout: Some(Duration::from_millis(250)),
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr();
    let mut client = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(client.try_clone().expect("clone"));

    // Activity resets nothing server-side — the timeout bounds the *gap*
    // between reads, so a served request first proves the session works.
    client
        .write_all(format!("{}\n", tiny_line("warm")).as_bytes())
        .expect("write");
    client.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read report");
    let report = Json::parse(resp.trim()).expect("report parses");
    assert_eq!(report.get("id").and_then(Json::as_str), Some("warm"));

    // Now go idle: the server speaks first, then hangs up.
    let mut idle = String::new();
    reader.read_line(&mut idle).expect("read idle line");
    let idle = Json::parse(idle.trim()).expect("idle line parses");
    assert_eq!(
        idle.get("error").and_then(Json::as_str),
        Some("idle_timeout")
    );
    assert!(matches!(idle.get("idle_ms"), Some(Json::Num(250))));
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("read EOF"), 0);
    assert_eq!(
        telemetry::registry().serve_idle_closes_total.get(),
        idle_before + 1
    );

    handle.begin_shutdown();
    let summary = handle.wait();
    assert_eq!(summary.sessions, 1);
    assert_eq!(summary.requests, 1);
}

/// After `max_requests_per_session` served requests the session is closed
/// with a `session_limit` line; excess pipelined requests go unanswered.
#[test]
fn session_limit_closes_after_max_requests() {
    let _guard = serialized();
    let limit_before = telemetry::registry().serve_limit_closes_total.get();
    let handle = serve(
        engine(1, 0),
        "127.0.0.1:0",
        ServeConfig {
            max_requests_per_session: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr();
    let mut client = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(client.try_clone().expect("clone"));
    for i in 0..3 {
        client
            .write_all(format!("{}\n", tiny_line(&format!("r{i}"))).as_bytes())
            .expect("write");
    }
    client.flush().expect("flush");

    for i in 0..2 {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read report");
        let report = Json::parse(resp.trim()).expect("report parses");
        assert_eq!(
            report.get("id").and_then(Json::as_str),
            Some(format!("r{i}").as_str())
        );
    }
    let mut limit = String::new();
    reader.read_line(&mut limit).expect("read limit line");
    let limit = Json::parse(limit.trim()).expect("limit line parses");
    assert_eq!(
        limit.get("error").and_then(Json::as_str),
        Some("session_limit")
    );
    assert!(matches!(limit.get("max_requests"), Some(Json::Num(2))));
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).expect("read EOF"),
        0,
        "the third pipelined request is never answered"
    );
    assert_eq!(
        telemetry::registry().serve_limit_closes_total.get(),
        limit_before + 1
    );

    handle.begin_shutdown();
    let summary = handle.wait();
    assert_eq!(summary.sessions, 1);
    assert_eq!(summary.requests, 2, "exactly the session limit");
}

/// With `--decode-threads`, pipelined sessions coalesce bursts and decode
/// them in parallel — but responses still come back strictly in request
/// order, bit-identical to the sequential batch run, with a mid-burst
/// parse error answered in-line at its exact position.
#[test]
fn decode_threads_sessions_answer_in_order_with_interleaved_errors() {
    let _guard = serialized();
    let lines = corpus_lines();
    let corpus_text = format!("{}\n", lines.join("\n"));
    let mut ref_out = Vec::new();
    JsonlServer::new()
        .serve(&engine(1, 1024), corpus_text.as_bytes(), &mut ref_out, 64)
        .expect("reference batch run");
    let reference: Vec<String> = String::from_utf8(ref_out)
        .expect("utf8 reports")
        .lines()
        .map(redacted)
        .collect();

    let handle = serve(
        engine(1, 1024),
        "127.0.0.1:0",
        ServeConfig {
            decode_threads: 3,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr();
    const BAD_AT: usize = 5;
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let lines = lines.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connects");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                // Pipeline the whole conversation in one write so the
                // session sees a multi-line burst, with a malformed line
                // planted mid-burst.
                let mut payload = String::new();
                for (i, line) in lines.iter().enumerate() {
                    if i == BAD_AT {
                        payload.push_str("this is not json\n");
                    }
                    payload.push_str(line);
                    payload.push('\n');
                }
                stream.write_all(payload.as_bytes()).expect("write burst");
                stream.flush().expect("flush");
                let mut got = Vec::new();
                for _ in 0..=lines.len() {
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("read");
                    got.push(resp.trim().to_string());
                }
                got
            })
        })
        .collect();
    let transcripts: Vec<Vec<String>> = clients
        .into_iter()
        .map(|t| t.join().expect("client"))
        .collect();
    handle.begin_shutdown();
    let summary = handle.wait();
    assert_eq!(summary.sessions, 2);
    assert_eq!(summary.requests, 2 * lines.len() as u64);
    assert_eq!(summary.errors, 2, "one planted parse error per session");
    for (client, transcript) in transcripts.iter().enumerate() {
        assert_eq!(transcript.len(), reference.len() + 1);
        for (i, resp) in transcript.iter().enumerate() {
            if i == BAD_AT {
                let err = Json::parse(resp).expect("error line parses");
                assert_eq!(
                    err.get("error").and_then(Json::as_str),
                    Some("parse"),
                    "client {client}: the planted error answers in position"
                );
            } else {
                let want = if i < BAD_AT {
                    &reference[i]
                } else {
                    &reference[i - 1]
                };
                assert_eq!(
                    &redacted(resp),
                    want,
                    "client {client} response {i} out of order"
                );
            }
        }
    }
}

/// A client that dies mid-request-line (torn write, no trailing newline)
/// on the parallel-decode path ends its session cleanly: the torn prefix
/// is answered as a parse error (or the dead peer's write fails as a
/// counted disconnect), and the next client is served normally.
#[test]
fn client_dying_mid_request_line_is_a_clean_session_end() {
    let _guard = serialized();
    let handle = serve(
        engine(1, 0),
        "127.0.0.1:0",
        ServeConfig {
            decode_threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr();

    let mut torn = TcpStream::connect(addr).expect("connects");
    torn.write_all(format!("{}\n", tiny_line("whole")).as_bytes())
        .expect("write whole line");
    torn.write_all(br#"{"id":"torn","machines":2,"cla"#)
        .expect("write torn prefix");
    torn.flush().expect("flush");
    drop(torn);

    // The torn prefix is a parse error, never a served request; the
    // session winds down without taking the server with it.
    let t0 = Instant::now();
    while telemetry::registry().serve_sessions_open.get() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "torn session never closed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut polite = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(polite.try_clone().expect("clone"));
    polite
        .write_all(format!("{}\n", tiny_line("after")).as_bytes())
        .expect("write");
    polite.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read report");
    let report = Json::parse(resp.trim()).expect("report parses");
    assert_eq!(report.get("id").and_then(Json::as_str), Some("after"));

    handle.begin_shutdown();
    let summary = handle.wait();
    assert_eq!(summary.sessions, 2);
    assert_eq!(summary.requests, 2, "the whole lines were served");
    assert_eq!(summary.errors, 1, "the torn prefix became a parse error");
}

/// A peer that pipelines requests and hangs up without reading ends its
/// session as a counted disconnect — the server keeps running and serves
/// the next client normally.
#[test]
fn peer_disconnect_ends_session_cleanly() {
    let _guard = serialized();
    let disconnects_before = telemetry::registry().serve_disconnects_total.get();
    let handle = serve(engine(1, 0), "127.0.0.1:0", ServeConfig::default()).expect("server binds");
    let addr = handle.local_addr();

    // Pipeline a pile of requests, then vanish: responses written after
    // the peer's RST fail with EPIPE/reset on the session's write path.
    let mut rude = TcpStream::connect(addr).expect("connects");
    for i in 0..64u64 {
        let line =
            jsonl::write_instance_line(Some(&format!("gone-{i}")), &msrs_gen::traffic(i, 3, 4));
        rude.write_all(format!("{line}\n").as_bytes())
            .expect("write");
    }
    rude.flush().expect("flush");
    drop(rude);

    let t0 = Instant::now();
    while telemetry::registry().serve_disconnects_total.get() == disconnects_before {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "disconnect was never counted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The server survived: a polite client is served normally.
    let mut polite = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(polite.try_clone().expect("clone"));
    polite
        .write_all(format!("{}\n", tiny_line("after")).as_bytes())
        .expect("write");
    polite.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read report");
    let report = Json::parse(resp.trim()).expect("report parses");
    assert_eq!(report.get("id").and_then(Json::as_str), Some("after"));

    handle.begin_shutdown();
    let summary = handle.wait();
    assert_eq!(summary.sessions, 2);
}
