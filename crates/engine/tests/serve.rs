//! The byte-level serving data plane (`serve_jsonl`) against the typed
//! streaming pipeline (`solve_stream`): for any corpus, the emitted report
//! lines must be bit-identical — modulo the `wall_micros` timings and the
//! `cache_hit` provenance flags — across thread counts 1/2/8, cache on/off,
//! and shard sizes, including corpora with relabelled duplicates and
//! escaped ids. Also covers the prefix-faithful error semantics and the
//! fast-path accounting of the serve loop.

use msrs_core::canonical::relabel;
use msrs_core::{ClassId, Instance, JobId};
use msrs_engine::json::Json;
use msrs_engine::stream::{serve_jsonl, solve_stream, JsonlReader};
use msrs_engine::{jsonl, Engine, EngineConfig, SolveRequest};
use proptest::prelude::*;

fn engine(threads: usize, cache_capacity: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        cache_capacity,
        ..EngineConfig::default()
    })
}

/// Zeroes every `wall_micros` and `cache_hit` in a report JSON document.
fn redact(json: &mut Json) {
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else if k == "cache_hit" {
                    *v = Json::Bool(false);
                } else {
                    redact(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact),
        _ => {}
    }
}

fn redacted_line(line: &str) -> String {
    let mut v = Json::parse(line).expect("emitted report line parses");
    redact(&mut v);
    v.to_string()
}

/// Serves `corpus_text` through the byte path and returns the redacted
/// report lines.
fn serve_lines(engine: &Engine, corpus_text: &str, shard: usize) -> Vec<String> {
    let mut out = Vec::new();
    let outcome = serve_jsonl(engine, corpus_text.as_bytes(), &mut out, shard).expect("serve");
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    let text = String::from_utf8(out).expect("UTF-8 report lines");
    text.lines().map(redacted_line).collect()
}

/// Streams `corpus_text` through the typed path and returns the redacted
/// JSON serialization of every report.
fn stream_lines(engine: &Engine, corpus_text: &str, shard: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let outcome = solve_stream(
        engine,
        JsonlReader::new(corpus_text.as_bytes()),
        shard,
        |report| {
            lines.push(redacted_line(&report.to_json().to_string()));
            Ok(())
        },
    )
    .expect("stream");
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    lines
}

/// Random corpora with planted relabelled duplicates and mixed ids
/// (missing, plain, and escape-needing).
fn arb_corpus_text() -> impl Strategy<Value = String> {
    let base = prop::collection::vec(
        (
            1usize..=4,
            prop::collection::vec(prop::collection::vec(0u64..=30, 1..=4), 1..=5),
        )
            .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid")),
        1..=8,
    );
    (base, prop::collection::vec(any::<usize>(), 0..=8)).prop_map(|(base, dup_picks)| {
        let mut corpus: Vec<Instance> = base.clone();
        for pick in dup_picks {
            let inst = &base[pick % base.len()];
            let k = inst.num_classes();
            let class_perm: Vec<ClassId> = (0..k).map(|c| (c + 1) % k.max(1)).collect();
            let job_order: Vec<JobId> = (0..inst.num_jobs()).rev().collect();
            corpus.push(relabel(inst, &class_perm, &job_order));
        }
        let reqs: Vec<SolveRequest> = corpus
            .into_iter()
            .enumerate()
            .map(|(i, inst)| match i % 3 {
                0 => SolveRequest::new(inst),
                1 => SolveRequest::with_id(format!("req-{i}"), inst),
                _ => SolveRequest::with_id(format!("esc \"{i}\"\n\té✓"), inst),
            })
            .collect();
        format!("# corpus\n\n{}", jsonl::write_corpus(&reqs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serve-vs-stream bit-identity (modulo timings and `cache_hit`) at
    /// threads 1/2/8, cache on and off, across shard sizes — on *fresh*
    /// engines, so both paths see identical cold caches.
    #[test]
    fn serve_matches_stream_bit_identically(
        corpus in arb_corpus_text(),
        shard in prop::sample::select(vec![1usize, 3, 64]),
    ) {
        for threads in [1usize, 2, 8] {
            for cache in [0usize, 1024] {
                let served = serve_lines(&engine(threads, cache), &corpus, shard);
                let streamed = stream_lines(&engine(threads, cache), &corpus, shard);
                prop_assert_eq!(
                    &served,
                    &streamed,
                    "threads {} cache {} shard {}",
                    threads,
                    cache,
                    shard
                );
            }
        }
        // And across thread counts: the byte path itself is thread-invariant.
        let one = serve_lines(&engine(1, 1024), &corpus, shard);
        let eight = serve_lines(&engine(8, 1024), &corpus, shard);
        prop_assert_eq!(one, eight);
    }

    /// The flat-storage instance representation round-trips through the
    /// JSONL encode/decode pair bit-identically: decoding an encoded line
    /// reproduces the instance (machines, per-class flat spans, offsets)
    /// and re-encoding reproduces the exact bytes.
    #[test]
    fn jsonl_encode_decode_is_a_bit_identical_round_trip(
        m in 1usize..=5,
        classes in prop::collection::vec(prop::collection::vec(0u64..=50, 0..=5), 0..=8),
        with_id in any::<bool>(),
    ) {
        let inst = Instance::from_classes(m, &classes).expect("valid");
        let id = with_id.then(|| "id \\\"x\\\" é✓".to_string());
        let line = jsonl::write_instance_line(id.as_deref(), &inst);
        let req = jsonl::read_instance_line(1, &line).expect("round trip parses");
        prop_assert_eq!(req.instance.machines(), inst.machines());
        prop_assert_eq!(req.instance.flat_sizes(), inst.flat_sizes());
        prop_assert_eq!(req.instance.class_offsets(), inst.class_offsets());
        prop_assert_eq!(&req.instance, &inst);
        prop_assert_eq!(jsonl::write_instance_line(req.id.as_deref(), &req.instance), line);
    }
}

#[test]
fn serve_is_prefix_faithful_on_a_malformed_line() {
    let good = jsonl::write_instance_line(Some("ok-1"), &msrs_gen::uniform(1, 2, 6, 2, 1, 9));
    let good2 = jsonl::write_instance_line(Some("ok-2"), &msrs_gen::uniform(2, 2, 6, 2, 1, 9));
    let text = format!("{good}\n{good2}\nnot json\n{good}\n");
    let engine = engine(2, 1024);
    let mut out = Vec::new();
    let outcome = serve_jsonl(&engine, text.as_bytes(), &mut out, 64).expect("serve");
    // Both reports before the malformed line were emitted…
    let emitted = String::from_utf8(out).unwrap();
    assert_eq!(emitted.lines().count(), 2);
    assert!(emitted.lines().next().unwrap().contains("\"id\":\"ok-1\""));
    assert_eq!(outcome.stats.instances, 2);
    // …and the error carries the physical line number.
    match outcome.error {
        Some(msrs_engine::jsonl::CorpusError::Json { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected Json error on line 3, got {other:?}"),
    }
}

#[test]
fn serve_fast_path_kicks_in_on_the_second_pass() {
    let reqs: Vec<SolveRequest> = (0..6)
        .map(|seed| SolveRequest::with_id(format!("t-{seed}"), msrs_gen::traffic(seed, 3, 4)))
        .collect();
    let text = jsonl::write_corpus(&reqs);
    let engine = engine(2, 1024);
    let mut first = Vec::new();
    let cold = serve_jsonl(&engine, text.as_bytes(), &mut first, 4).expect("serve");
    assert_eq!(cold.stats.instances, 6);
    assert!(cold.stats.max_resident > 0, "cold pass materializes misses");
    let mut second = Vec::new();
    let warm = serve_jsonl(&engine, text.as_bytes(), &mut second, 4).expect("serve");
    assert_eq!(warm.stats.instances, 6);
    assert_eq!(warm.stats.fast_path_hits, 6, "every line cache-served");
    assert_eq!(warm.stats.max_resident, 0, "no request materialized");
    // Warm output equals cold output modulo timings/cache_hit.
    let a: Vec<String> = String::from_utf8(first)
        .unwrap()
        .lines()
        .map(redacted_line)
        .collect();
    let b: Vec<String> = String::from_utf8(second)
        .unwrap()
        .lines()
        .map(redacted_line)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn serve_skips_blanks_and_comments_and_reports_empty_corpora() {
    let engine = engine(1, 1024);
    let mut out = Vec::new();
    let outcome = serve_jsonl(&engine, "# nothing\n\n \n".as_bytes(), &mut out, 8).expect("serve");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.stats.instances, 0);
    assert!(out.is_empty());
}
