//! End-to-end tests of `msrs dispatch` — crash-tolerant multi-process
//! shard execution against real `msrs worker` child processes:
//!
//! * **bit-identity** — the merged report stream equals a single-process
//!   sequential batch run over the same corpus (modulo `wall_micros` and
//!   `cache_hit`) across worker counts 1, 2, 4 and engine thread counts
//!   1, 2, 8;
//! * **fault tolerance** — deterministically injected worker faults
//!   (`MSRS_FAULT`: crash, hang, garbled output, torn report line) are
//!   retried and the final output is still bit-identical; torn or garbled
//!   worker output never reaches the merged stream;
//! * **quarantine** — a shard whose worker fails on every attempt is
//!   quarantined after `max_attempts` with one structured
//!   `shard_quarantined` record in its place, and the rest of the run
//!   completes normally;
//! * **checkpointed resume** — a run interrupted after a random shard
//!   resumes from its checkpoint to a byte-identical output file and
//!   bits-exact merged statistics, and a resume against a changed corpus
//!   is rejected.

use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::time::Duration;

use proptest::prelude::*;

use msrs_engine::dispatch::DispatchConfig;
use msrs_engine::json::Json;
use msrs_engine::stream::{JsonlServer, StreamStats};
use msrs_engine::{dispatch, jsonl, Engine, EngineConfig};

/// The real `msrs` binary, built by Cargo for this test run.
const MSRS_BIN: &str = env!("CARGO_BIN_EXE_msrs");

fn engine(threads: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
}

/// A duplicate-heavy corpus with a comment and a blank line, so shard
/// boundaries run over *meaningful* lines, not physical ones.
fn corpus_text(n: u64) -> String {
    let mut text = String::from("# dispatch test corpus\n\n");
    for seed in 0..n {
        text.push_str(&jsonl::write_instance_line(
            Some(&format!("d-{seed}")),
            &msrs_gen::traffic(seed, 3, 4),
        ));
        text.push('\n');
    }
    text
}

/// Zeroes `wall_micros` and normalizes `cache_hit` — the two fields the
/// determinism contract excludes.
fn redact(json: &mut Json) {
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else if k == "cache_hit" {
                    *v = Json::Bool(false);
                } else {
                    redact(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact),
        _ => {}
    }
}

fn redacted(line: &str) -> String {
    let mut json = Json::parse(line).expect("output line parses as JSON");
    redact(&mut json);
    json.to_string()
}

/// The single-process sequential reference: `msrs batch` semantics over
/// the same corpus and shard size.
fn reference_run(text: &str, shard_size: usize) -> (Vec<String>, StreamStats) {
    let mut out = Vec::new();
    let outcome = JsonlServer::new()
        .serve(&engine(1), text.as_bytes(), &mut out, shard_size)
        .expect("reference batch run");
    assert!(outcome.error.is_none());
    let lines = String::from_utf8(out)
        .expect("utf8 reports")
        .lines()
        .map(redacted)
        .collect();
    (lines, outcome.stats)
}

fn read_lines(path: &Path) -> Vec<String> {
    fs::read_to_string(path)
        .expect("output file readable")
        .lines()
        .map(str::to_string)
        .collect()
}

fn read_redacted(path: &Path) -> Vec<String> {
    read_lines(path).iter().map(|l| redacted(l)).collect()
}

/// A scratch path unique to this process and test.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("msrs-dispatch-test-{}-{name}", std::process::id()))
}

/// A dispatch config running real workers; `fault` wraps the worker in
/// `env MSRS_FAULT=<spec>` so the injection stays child-process-local.
fn config(
    workers: usize,
    shard_size: usize,
    threads: usize,
    fault: Option<&str>,
) -> DispatchConfig {
    let mut worker_cmd = Vec::new();
    if let Some(spec) = fault {
        worker_cmd.push("/usr/bin/env".to_string());
        worker_cmd.push(format!("MSRS_FAULT={spec}"));
    }
    worker_cmd.extend([
        MSRS_BIN.to_string(),
        "worker".to_string(),
        "--threads".to_string(),
        threads.to_string(),
    ]);
    DispatchConfig {
        worker_cmd,
        workers,
        shard_size,
        retry_backoff: Duration::from_millis(10),
        ..DispatchConfig::default()
    }
}

#[test]
fn dispatch_matches_batch_reference_across_workers_and_threads() {
    let text = corpus_text(18);
    let (reference, _) = reference_run(&text, 4);
    for workers in [1usize, 2, 4] {
        for threads in [1usize, 2, 8] {
            let out = tmp(&format!("plain-{workers}-{threads}.jsonl"));
            let cfg = config(workers, 4, threads, None);
            let outcome = dispatch::dispatch(Cursor::new(text.clone()), &out, None, &cfg, None)
                .expect("dispatch runs");
            assert!(
                outcome.error.is_none(),
                "workers={workers} threads={threads}"
            );
            assert!(outcome.quarantined.is_empty());
            assert!(!outcome.interrupted);
            assert_eq!(outcome.stats.instances, 18);
            assert_eq!(outcome.shards_total, 5, "18 instances / shard_size 4");
            assert_eq!(outcome.retries, 0);
            assert_eq!(
                read_redacted(&out),
                reference,
                "workers={workers} threads={threads}"
            );
            fs::remove_file(&out).ok();
        }
    }
}

/// A worker that crashes on its first visit to shard 2 is replaced, the
/// shard is retried, and the merged output is unchanged.
#[test]
fn injected_crash_is_retried_and_output_identical() {
    let text = corpus_text(18);
    let (reference, _) = reference_run(&text, 4);
    let out = tmp("crash.jsonl");
    let cfg = config(2, 4, 2, Some("crash:shard=2"));
    let outcome =
        dispatch::dispatch(Cursor::new(text), &out, None, &cfg, None).expect("dispatch survives");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(outcome.retries >= 1, "the crash forced at least one retry");
    assert!(
        outcome.workers_spawned > 2,
        "the crashed worker was replaced"
    );
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

/// Garbled and torn (partial-line, no newline) worker output is detected
/// before commit: the shard is retried and the merged stream never
/// contains a corrupt byte.
#[test]
fn garbled_and_torn_worker_output_never_reaches_the_merged_stream() {
    let text = corpus_text(18);
    let (reference, _) = reference_run(&text, 4);
    for spec in ["garble:shard=1", "partial:shard=3"] {
        let out = tmp(&format!("{}.jsonl", spec.split(':').next().unwrap()));
        let cfg = config(2, 4, 1, Some(spec));
        let outcome = dispatch::dispatch(Cursor::new(text.clone()), &out, None, &cfg, None)
            .expect("dispatch survives");
        assert!(outcome.error.is_none(), "{spec}");
        assert!(outcome.quarantined.is_empty(), "{spec}");
        assert!(
            outcome.retries >= 1,
            "{spec}: the bad output forced a retry"
        );
        assert_eq!(read_redacted(&out), reference, "{spec}");
        fs::remove_file(&out).ok();
    }
}

/// A hung worker (heartbeats suppressed, solver never returns) trips the
/// heartbeat-silence deadline, is killed, and its shard is retried.
#[test]
fn hung_worker_is_detected_by_heartbeat_silence_and_retried() {
    let text = corpus_text(18);
    let (reference, _) = reference_run(&text, 4);
    let out = tmp("hang.jsonl");
    let mut cfg = config(2, 4, 1, Some("hang:shard=1"));
    cfg.heartbeat_timeout = Duration::from_millis(400);
    cfg.worker_cmd
        .extend(["--heartbeat-ms".to_string(), "50".to_string()]);
    let outcome =
        dispatch::dispatch(Cursor::new(text), &out, None, &cfg, None).expect("dispatch survives");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(outcome.retries >= 1, "the hang forced at least one retry");
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

/// A shard that fails on *every* attempt is quarantined after
/// `max_attempts`, leaving one structured record in its output position;
/// every other shard is unaffected.
#[test]
fn poison_shard_is_quarantined_and_the_run_degrades_gracefully() {
    let text = corpus_text(18);
    let (reference, _) = reference_run(&text, 4);
    let out = tmp("quarantine.jsonl");
    // `attempts=99` keeps the fault firing long past the retry budget.
    let mut cfg = config(2, 4, 1, Some("crash:shard=1,attempts=99"));
    cfg.max_attempts = 2;
    let outcome = dispatch::dispatch(Cursor::new(text), &out, None, &cfg, None)
        .expect("coordinator survives");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.quarantined.len(), 1);
    assert_eq!(outcome.quarantined[0].shard, 1);
    assert_eq!(outcome.quarantined[0].attempts, 2);
    assert!(
        outcome.quarantined[0].worker.is_some(),
        "the quarantine record attributes the failing worker"
    );
    assert_eq!(outcome.shards_total, 5, "quarantined shards still count");
    assert_eq!(
        outcome.stats.instances, 14,
        "the four instances of the poisoned shard are missing"
    );

    // Shard 1 covers reports 4..8 of the reference; in its place sits one
    // structured quarantine record.
    let lines = read_lines(&out);
    assert_eq!(lines.len(), reference.len() - 4 + 1);
    let record = Json::parse(&lines[4]).expect("quarantine record parses");
    assert_eq!(
        record.get("error").and_then(Json::as_str),
        Some("shard_quarantined")
    );
    assert!(matches!(record.get("shard"), Some(Json::Num(1))));
    assert!(matches!(record.get("attempts"), Some(Json::Num(2))));
    assert!(matches!(record.get("lines"), Some(Json::Num(4))));
    assert!(
        matches!(record.get("worker"), Some(Json::Num(_))),
        "the structured record carries the failing worker's ordinal"
    );
    let got = read_redacted(&out);
    assert_eq!(&got[..4], &reference[..4], "shard 0 is untouched");
    assert_eq!(&got[5..], &reference[8..], "shards 2..5 are untouched");
    fs::remove_file(&out).ok();
}

/// The coordinator-backed cache plane: a dispatch run with a `--cache-path`
/// store persists every solved report, and a second run over the same
/// corpus answers worker probes from the shared store — with a merged
/// stream still bit-identical to the batch reference.
#[test]
fn fleet_cache_plane_serves_probes_and_output_is_identical() {
    // Duplicate-heavy: 18 lines over 6 distinct canonical forms, so the
    // second run's probes all land on durable records.
    let mut text = String::from("# cache plane corpus\n\n");
    for i in 0..18u64 {
        text.push_str(&jsonl::write_instance_line(
            Some(&format!("c-{i}")),
            &msrs_gen::uniform(i % 6, 3, 12, 3, 1, 40),
        ));
        text.push('\n');
    }
    let (reference, _) = reference_run(&text, 4);
    let store = tmp("cache-plane.mcache");
    fs::remove_file(&store).ok();
    let mut cfg = config(2, 4, 1, None);
    cfg.cache_path = Some(store.clone());

    let out = tmp("cache-plane-1.jsonl");
    let first = dispatch::dispatch(Cursor::new(text.clone()), &out, None, &cfg, None)
        .expect("first cache-plane run");
    assert!(first.error.is_none());
    assert!(first.quarantined.is_empty());
    assert_eq!(
        read_redacted(&out),
        reference,
        "cold store run is unperturbed"
    );

    // Second run, same store: every distinct form is already durable.
    let out2 = tmp("cache-plane-2.jsonl");
    let second = dispatch::dispatch(Cursor::new(text), &out2, None, &cfg, None)
        .expect("second cache-plane run");
    assert!(second.error.is_none());
    assert!(
        second.fleet_cache_hits >= 6,
        "the warm store answers at least one probe per distinct form, got {}",
        second.fleet_cache_hits
    );
    assert_eq!(
        read_redacted(&out2),
        reference,
        "cache-served reports are bit-identical to the batch reference"
    );
    fs::remove_file(&out).ok();
    fs::remove_file(&out2).ok();
    fs::remove_file(&store).ok();
}

/// Resuming against a corpus that changed since the checkpoint was
/// written is refused — silently recomputing would splice reports of two
/// different corpora into one output file.
#[test]
fn resume_rejects_a_changed_corpus() {
    let text = corpus_text(18);
    let out = tmp("reject.jsonl");
    let ckpt = tmp("reject.ckpt");
    fs::remove_file(&out).ok();
    fs::remove_file(&ckpt).ok();
    let mut cfg = config(2, 4, 1, None);
    cfg.stop_after_shards = Some(1);
    let first = dispatch::dispatch(Cursor::new(text), &out, Some(&ckpt), &cfg, None)
        .expect("interrupted run");
    assert!(first.interrupted);
    assert!(first.shards_total >= 1);

    let mut changed = corpus_text(18);
    changed = changed.replace("d-0", "x-0");
    cfg.stop_after_shards = None;
    let err = dispatch::dispatch(Cursor::new(changed), &out, Some(&ckpt), &cfg, None)
        .expect_err("changed corpus must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("corpus changed"), "{err}");
    fs::remove_file(&out).ok();
    fs::remove_file(&ckpt).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill the coordinator after a random shard (graceful drain — the
    /// crash-consistency of a hard kill is exercised by the checkpoint
    /// unit tests), then resume with a random fleet: the final output
    /// file is byte-identical to an uninterrupted single-process run and
    /// the merged statistics are bits-exact.
    #[test]
    fn interrupted_dispatch_resumes_bit_identically(
        stop in 1usize..4,
        workers in 1usize..5,
        threads_sel in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][threads_sel];
        let text = corpus_text(18);
        let (reference, ref_stats) = reference_run(&text, 4);
        let out = tmp(&format!("resume-{stop}-{workers}-{threads}.jsonl"));
        let ckpt = tmp(&format!("resume-{stop}-{workers}-{threads}.ckpt"));
        fs::remove_file(&out).ok();
        fs::remove_file(&ckpt).ok();

        // The stats yardstick is an *uninterrupted dispatch* run: its
        // ratio_sum adds per-shard subtotals, which can differ from the
        // report-by-report batch accumulation by rounding (f64 addition
        // is not associative), but must be bits-exact across fleet
        // shapes and across interruption/resume.
        let uninterrupted_out = tmp(&format!("resume-ref-{stop}-{workers}-{threads}.jsonl"));
        let plain = dispatch::dispatch(
            Cursor::new(text.clone()),
            &uninterrupted_out,
            None,
            &config(1, 4, 1, None),
            None,
        ).expect("uninterrupted run");
        fs::remove_file(&uninterrupted_out).ok();

        let mut cfg = config(workers, 4, threads, None);
        cfg.stop_after_shards = Some(stop);
        let first = dispatch::dispatch(
            Cursor::new(text.clone()), &out, Some(&ckpt), &cfg, None,
        ).expect("interrupted run");
        prop_assert!(first.error.is_none());
        prop_assert!(first.interrupted, "5 shards total, stopped after ≤ 3");
        prop_assert!(first.shards_total >= stop, "drain finishes in-flight shards");

        cfg.stop_after_shards = None;
        let second = dispatch::dispatch(
            Cursor::new(text), &out, Some(&ckpt), &cfg, None,
        ).expect("resumed run");
        prop_assert!(second.error.is_none());
        prop_assert!(!second.interrupted);
        prop_assert!(second.quarantined.is_empty());
        prop_assert_eq!(second.shards_resumed, first.shards_total);
        prop_assert_eq!(second.shards_total, 5);
        prop_assert_eq!(second.stats.instances, 18);

        // Byte-identical output, bits-exact merged statistics. (Cache
        // provenance — `fast_path_hits` — is excluded along with
        // `cache_hit`: process boundaries legitimately change it.)
        prop_assert_eq!(read_redacted(&out), reference);
        prop_assert_eq!(second.stats.proven_optimal, ref_stats.proven_optimal);
        prop_assert_eq!(
            second.stats.ratio_sum.to_bits(),
            plain.stats.ratio_sum.to_bits(),
            "checkpointed f64 accumulators merge bits-exact"
        );
        prop_assert_eq!(
            second.stats.ratio_worst.to_bits(),
            ref_stats.ratio_worst.to_bits(),
            "max is order-independent, so the batch reference agrees too"
        );
        fs::remove_file(&out).ok();
        fs::remove_file(&ckpt).ok();
    }
}
