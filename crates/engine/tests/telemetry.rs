//! End-to-end observability acceptance: a `traffic` batch pushed through
//! the serving data plane leaves a registry snapshot with nonzero stage
//! histograms for every data-plane hop and a per-(profile, member) outcome
//! row for every portfolio member that raced.
//!
//! Everything is asserted as a *delta* against a pre-run snapshot (the
//! registry is process-global and other tests in other binaries do not
//! share this process, but staying delta-based keeps the test honest if
//! more tests are ever added to this file).

use msrs_engine::stream::serve_jsonl;
use msrs_engine::telemetry::{self, Stage};
use msrs_engine::{classify, jsonl, plan, Engine, EngineConfig};

#[test]
fn traffic_batch_populates_stages_and_outcome_table() {
    // Production-shaped duplicate-heavy traffic, rendered as JSONL.
    let instances: Vec<_> = (0..64).map(|seed| msrs_gen::traffic(seed, 3, 6)).collect();
    let mut corpus = String::new();
    for (i, inst) in instances.iter().enumerate() {
        corpus.push_str(&jsonl::write_instance_line(Some(&format!("t-{i}")), inst));
        corpus.push('\n');
    }

    let cfg = EngineConfig {
        threads: 2,
        cache_capacity: 1024,
        ..EngineConfig::default()
    };
    // The members the planner will race, per instance profile — collected
    // up front so the outcome-table assertion below covers *every* raced
    // (tier, member) pair, not a hand-picked sample.
    let mut raced: Vec<(usize, usize)> = Vec::new();
    for inst in &instances {
        let profile = classify(inst);
        for member in plan(&profile, &cfg).members {
            let pair = (profile.tier.index(), member.index());
            if !raced.contains(&pair) {
                raced.push(pair);
            }
        }
    }
    assert!(!raced.is_empty());

    let engine = Engine::new(cfg);
    let before = telemetry::snapshot();
    let runs_before: Vec<u64> = raced
        .iter()
        .map(|&(p, m)| telemetry::registry().outcomes.runs(p, m))
        .collect();
    let mut out = Vec::new();
    let outcome = serve_jsonl(&engine, corpus.as_bytes(), &mut out, 16).expect("serve");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.stats.instances, 64);
    let after = telemetry::snapshot();

    // Every data-plane hop of the byte-level serve path recorded samples.
    for stage in [
        Stage::Decode,
        Stage::Canonicalize,
        Stage::CacheLookup,
        Stage::Plan,
        Stage::MemberRace,
        Stage::Serialize,
    ] {
        let delta = after.stage(stage).count - before.stage(stage).count;
        assert!(delta > 0, "stage {} recorded no samples", stage.label());
    }
    // Decode and serialize fire once per line.
    assert!(after.stage(Stage::Decode).count - before.stage(Stage::Decode).count >= 64);
    assert!(after.stage(Stage::Serialize).count - before.stage(Stage::Serialize).count >= 64);

    // Every (tier, member) pair the planner raced has outcome rows.
    for (&(p, m), &prior) in raced.iter().zip(&runs_before) {
        let now = telemetry::registry().outcomes.runs(p, m);
        assert!(now > prior, "no outcome recorded for cell ({p}, {m})");
    }
    // And the snapshot carries them with real labels.
    assert!(
        after
            .outcomes
            .iter()
            .any(|o| o.member == "five_thirds" && o.runs > 0),
        "five_thirds races on every non-trivial instance"
    );

    // Request accounting: every line counted exactly once, fast-path lines
    // flagged as such.
    let requests = after.counter("msrs_requests_total") - before.counter("msrs_requests_total");
    assert_eq!(requests, 64, "each line counts as exactly one request");
    let fast =
        after.counter("msrs_serve_fast_path_total") - before.counter("msrs_serve_fast_path_total");
    assert_eq!(fast as usize, outcome.stats.fast_path_hits);

    // The rendered forms carry the same story.
    let json = after.to_json_string();
    assert!(json.contains("msrs_stage_member_race_nanos"));
    assert!(json.contains("\"outcomes\":[{"));
    let prom = after.to_prometheus();
    assert!(prom.contains("msrs_outcome_runs_total{profile="));
}
