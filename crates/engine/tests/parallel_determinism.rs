//! Determinism and deadline guarantees of the engine on the real parallel
//! backend:
//!
//! * batch reports must be **bit-identical** across `threads = 1, 2, 8`
//!   (property-tested over random corpora; only `wall_micros` may differ);
//! * a configured deadline must bound every member's runtime, with
//!   interrupted members reported as `timed_out`.

use std::time::{Duration, Instant};

use msrs_core::{validate, Instance, Time};
use msrs_engine::{Engine, EngineConfig, ExactPolicy, RunStatus, SolveReport, SolveRequest};
use proptest::prelude::*;

fn arb_corpus() -> impl Strategy<Value = Vec<Instance>> {
    prop::collection::vec(
        (
            1usize..=4,
            prop::collection::vec(prop::collection::vec(0u64..=30, 1..=4), 1..=6),
        )
            .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid")),
        1..=24,
    )
}

fn engine_with_threads(threads: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
}

/// Everything except the timings, in a directly comparable form. The JSON
/// serialization covers every report field but `wall_micros`-like timings
/// and the schedule, so compare the redacted JSON plus the schedule.
fn comparable(report: &SolveReport) -> (String, Vec<(usize, Time)>) {
    let mut json = report.to_json();
    redact_timings(&mut json);
    let schedule = (0..report.schedule.len())
        .map(|j| {
            let a = report.schedule.assignment(j);
            (a.machine, a.start)
        })
        .collect();
    (json.to_string(), schedule)
}

fn redact_timings(json: &mut msrs_engine::json::Json) {
    use msrs_engine::json::Json;
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else {
                    redact_timings(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact_timings),
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_reports_are_bit_identical_across_thread_counts(corpus in arb_corpus()) {
        let reqs: Vec<SolveRequest> = corpus
            .into_iter()
            .enumerate()
            .map(|(i, inst)| SolveRequest::with_id(format!("i{i}"), inst))
            .collect();
        let baseline: Vec<_> = engine_with_threads(1)
            .solve_batch(&reqs)
            .iter()
            .map(comparable)
            .collect();
        for threads in [2usize, 8] {
            let got: Vec<_> = engine_with_threads(threads)
                .solve_batch(&reqs)
                .iter()
                .map(comparable)
                .collect();
            prop_assert_eq!(&got, &baseline, "thread count {} diverged", threads);
        }
    }
}

#[test]
fn portfolio_deadline_is_respected_with_timed_out_member() {
    // Parity-gap partition (see msrs_gen::parity_gap_partition): OPT = T+1
    // and the unbounded exact proof needs minutes; the 50 ms deadline must
    // cut it off cooperatively.
    let inst = msrs_gen::parity_gap_partition(21);
    let deadline = Duration::from_millis(50);
    for threads in [1usize, 4] {
        let engine = Engine::new(EngineConfig {
            threads,
            deadline: Some(deadline),
            exact: ExactPolicy {
                max_jobs: 32,
                max_classes: 32,
                max_nodes: u64::MAX,
            },
            ..EngineConfig::default()
        });
        let started = Instant::now();
        let report = engine.solve_instance(&inst);
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(3),
            "threads={threads}: portfolio overshot the deadline: {elapsed:?}"
        );
        // Each member finished within deadline + slack — in particular the
        // interrupted exact member reports its true (bounded) wall time.
        for run in &report.runs {
            assert!(
                run.wall_micros < 3_000_000,
                "threads={threads}: member {} reports {} µs",
                run.solver,
                run.wall_micros
            );
        }
        assert!(
            report.runs.iter().any(|r| r.status == RunStatus::TimedOut),
            "threads={threads}: expected a timed-out member"
        );
        assert_eq!(validate(&inst, &report.schedule), Ok(()));
        assert!(report.makespan <= report.certified_horizon);
    }
}
