//! Guarantees of the streaming sharded batch pipeline:
//!
//! * a malformed line mid-stream surfaces the correct 1-based *physical*
//!   line number, and every report for lines before it is still emitted;
//! * a sharded run's reports are bit-identical to an unsharded
//!   `solve_batch` over the same corpus — at threads 1, 2, and 8 — except
//!   for the `wall_micros` timings and the `cache_hit` provenance flag
//!   (sharding only changes *when* a duplicate is served from the cache
//!   versus deduplicated inside its batch).

use std::io::Cursor;

use msrs_engine::jsonl::{self, CorpusError};
use msrs_engine::stream::{solve_stream, JsonlReader};
use msrs_engine::{Engine, EngineConfig, SolveReport, SolveRequest};

/// Everything except timings and cache provenance, directly comparable.
fn comparable(report: &SolveReport) -> String {
    let mut json = report.to_json();
    redact(&mut json);
    let schedule: Vec<(usize, u64)> = (0..report.schedule.len())
        .map(|j| {
            let a = report.schedule.assignment(j);
            (a.machine, a.start)
        })
        .collect();
    format!("{json} schedule={schedule:?}")
}

fn redact(json: &mut msrs_engine::json::Json) {
    use msrs_engine::json::Json;
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else if k == "cache_hit" {
                    *v = Json::Bool(false);
                } else {
                    redact(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact),
        _ => {}
    }
}

fn engine(threads: usize, cache_capacity: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        cache_capacity,
        ..EngineConfig::default()
    })
}

/// A duplicate-heavy corpus (relabelled instances share canonical forms),
/// serialized as JSONL.
fn corpus() -> Vec<SolveRequest> {
    let mut reqs = Vec::new();
    for seed in 0..30u64 {
        let inst = msrs_gen::traffic(seed, 3, 5);
        reqs.push(SolveRequest::with_id(format!("t-{seed}"), inst));
    }
    reqs
}

fn corpus_text(reqs: &[SolveRequest]) -> String {
    jsonl::write_corpus(reqs.iter())
}

#[test]
fn malformed_line_mid_stream_keeps_earlier_reports_and_its_line_number() {
    let reqs = corpus();
    let mut text = String::from("# corpus header\n\n");
    for req in reqs.iter().take(5) {
        text.push_str(&jsonl::write_instance_line(
            req.id.as_deref(),
            &req.instance,
        ));
        text.push('\n');
    }
    // Physical lines so far: 1 comment + 1 blank + 5 instances = 7.
    text.push_str("{\"machines\":oops}\n");
    text.push_str(&jsonl::write_instance_line(
        Some("after"),
        &reqs[6].instance,
    ));
    text.push('\n');

    let engine = engine(2, 0);
    let mut emitted = Vec::new();
    let outcome = solve_stream(
        &engine,
        JsonlReader::new(Cursor::new(text)),
        2, // shard size: two full shards plus a partial one before the error
        |report| {
            emitted.push(report.id.clone().unwrap_or_default());
            Ok(())
        },
    )
    .expect("emit never fails");

    assert_eq!(
        emitted,
        vec!["t-0", "t-1", "t-2", "t-3", "t-4"],
        "every line before the malformed one yields its report, in order"
    );
    assert_eq!(outcome.stats.instances, 5);
    assert_eq!(outcome.stats.shards, 3, "2 + 2 + 1 (flushed partial shard)");
    match outcome.error {
        Some(CorpusError::Json { line, .. }) => assert_eq!(line, 8, "1-based physical line"),
        other => panic!("expected a Json error, got {other:?}"),
    }
}

#[test]
fn sharded_reports_are_bit_identical_to_unsharded_across_thread_counts() {
    let text = corpus_text(&corpus());
    // The unsharded reference solves the *parsed* corpus: serialization
    // renumbers jobs class by class, so comparing against the in-memory
    // generator output would diff job labellings, not pipeline behavior.
    let reqs = jsonl::read_corpus(&text).expect("valid corpus");
    for cache_capacity in [0usize, 1024] {
        let baseline: Vec<String> = engine(1, cache_capacity)
            .solve_batch(&reqs)
            .iter()
            .map(comparable)
            .collect();
        for threads in [1usize, 2, 8] {
            for shard_size in [4usize, 7, 64] {
                let engine = engine(threads, cache_capacity);
                let mut streamed = Vec::new();
                let outcome = solve_stream(
                    &engine,
                    JsonlReader::new(Cursor::new(text.clone())),
                    shard_size,
                    |report| {
                        streamed.push(comparable(report));
                        Ok(())
                    },
                )
                .expect("emit never fails");
                assert!(outcome.error.is_none());
                assert_eq!(outcome.stats.instances, reqs.len());
                assert_eq!(
                    outcome.stats.shards,
                    reqs.len().div_ceil(shard_size),
                    "threads={threads} shard_size={shard_size}"
                );
                assert!(outcome.stats.max_resident <= shard_size);
                assert_eq!(
                    streamed, baseline,
                    "threads={threads} shard_size={shard_size} cache={cache_capacity}"
                );
            }
        }
    }
}

#[test]
fn stream_memory_stays_bounded_by_the_shard() {
    // Not a real memory meter (no allocator hooks here) — asserts the
    // pipeline's own residency accounting: max requests resident at once
    // equals the shard size even for a much longer corpus.
    let engine = engine(2, 64);
    let n = 500usize;
    let requests = (0..n as u64).map(|seed| {
        Ok(SolveRequest::with_id(
            format!("t-{seed}"),
            msrs_gen::traffic(seed, 3, 10),
        ))
    });
    let mut count = 0usize;
    let outcome = solve_stream(&engine, requests, 32, |_| {
        count += 1;
        Ok(())
    })
    .expect("emit never fails");
    assert!(outcome.error.is_none());
    assert_eq!(count, n);
    assert_eq!(outcome.stats.max_resident, 32);
    assert_eq!(outcome.stats.shards, n.div_ceil(32));
}

#[test]
fn emit_errors_abort_the_stream() {
    let engine = engine(1, 0);
    let requests =
        (0..10u64).map(|seed| Ok(SolveRequest::new(msrs_gen::uniform(seed, 2, 6, 2, 1, 9))));
    let result = solve_stream(&engine, requests, 4, |_| {
        Err(std::io::Error::other("sink full"))
    });
    assert!(result.is_err(), "downstream I/O errors propagate");
}
