//! Robustness proofs for the durable result-cache store:
//!
//! * **truncation sweep** — a pristine two-segment store cut at *every*
//!   byte offset loads without a panic or an error, yields exactly the
//!   records whose lines survived intact (never a corrupt one), and
//!   counts no quarantine — a torn tail is recovery, not corruption;
//! * **bit-flip sweep** — a single bit flipped at *every* byte of every
//!   record line is always detected: the open never fails, the flipped
//!   record's segment is quarantined (counted in stats *and* the
//!   process-global telemetry), the sibling segment loads untouched, and
//!   no loaded entry ever deviates from the pristine bytes;
//! * **warm restart** — an engine that served a corpus through an
//!   attached store is dropped (joining the background flusher), a fresh
//!   engine warm-loads the store, and a second pass over the same corpus
//!   is served entirely from cache, bit-identical modulo `wall_micros`
//!   and `cache_hit`.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use msrs_core::{Assignment, Schedule};
use msrs_engine::json::Json;
use msrs_engine::portfolio::SolverKind;
use msrs_engine::report::{RunStatus, SolverRun};
use msrs_engine::stream::JsonlServer;
use msrs_engine::{cachestore, jsonl, CacheStore, Engine, EngineConfig, SolveReport};

/// A scratch path unique to this process and test.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("msrs-cachestore-it-{}-{name}", std::process::id()))
}

/// A small synthetic (but fully canonical) report — `to_store_json` of
/// this value round-trips bit-identically, which is all the store's
/// checksum verification relies on.
fn report(seed: u64) -> SolveReport {
    SolveReport {
        id: None,
        jobs: 2,
        machines: 1,
        classes: 1,
        lower_bound: seed,
        makespan: seed + 1,
        winner: SolverKind::FiveThirds,
        certified_horizon: seed + 2,
        certified_by: SolverKind::FiveThirds,
        proven_optimal: false,
        cache_hit: false,
        wall_micros: 3,
        runs: vec![SolverRun {
            solver: SolverKind::FiveThirds,
            status: RunStatus::Completed,
            makespan: Some(seed + 1),
            certified_horizon: Some(seed + 2),
            nodes: None,
            wall_micros: 3,
        }],
        schedule: Schedule::new(vec![
            Assignment {
                machine: 0,
                start: 0,
            },
            Assignment {
                machine: 0,
                start: seed,
            },
        ]),
    }
}

const CONFIG_FP: u64 = 0x5eed;

/// Builds a pristine two-segment store (a reopen writes a fresh segment
/// marker between the two batches) and returns its bytes plus the
/// expected `(fingerprint, payload)` list in file order.
fn pristine_store(
    path: &std::path::Path,
    first: u64,
    second: u64,
) -> (Vec<u8>, Vec<(u128, String)>) {
    let _ = fs::remove_file(path);
    let mut expected = Vec::new();
    for (start, count) in [(0u64, first), (first, second)] {
        let (mut store, _, _) = CacheStore::open(path, CONFIG_FP).expect("store opens");
        for i in start..start + count {
            let payload = report(i).to_store_json().to_string();
            store
                .append(i as u128 + 1, CONFIG_FP, &payload)
                .expect("append");
            expected.push((i as u128 + 1, payload));
        }
        store.sync().expect("sync");
    }
    let bytes = fs::read(path).expect("store readable");
    (bytes, expected)
}

/// Byte spans (start, end-exclusive of the newline) of every record line.
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for line in bytes.split(|&b| b == b'\n') {
        if line.starts_with(b"{\"fp\":") {
            spans.push((start, start + line.len()));
        }
        start += line.len() + 1;
    }
    spans
}

#[test]
fn loader_survives_truncation_at_every_byte_offset() {
    let build = tmp("trunc-build.mcache");
    let (bytes, expected) = pristine_store(&build, 3, 2);
    let spans = record_spans(&bytes);
    assert_eq!(spans.len(), expected.len());
    let scratch = tmp("trunc-scratch.mcache");
    for cut in 0..=bytes.len() {
        fs::write(&scratch, &bytes[..cut]).expect("scratch writable");
        let (_store, entries, stats) = CacheStore::open(&scratch, CONFIG_FP)
            .unwrap_or_else(|e| panic!("truncation at byte {cut} must load, not error: {e}"));
        // A record survives iff its full line (newline included) fits.
        let survivors: Vec<&(u128, String)> = spans
            .iter()
            .zip(&expected)
            .filter(|((_, end), _)| *end < cut)
            .map(|(_, exp)| exp)
            .collect();
        assert_eq!(
            entries.len(),
            survivors.len(),
            "truncation at byte {cut} of {}",
            bytes.len()
        );
        for (entry, (fp, payload)) in entries.iter().zip(survivors) {
            assert_eq!(entry.fingerprint, *fp, "at byte {cut}");
            assert_eq!(&*entry.payload, payload.as_str(), "at byte {cut}");
            assert_eq!(
                entry.report.to_store_json().to_string(),
                *payload,
                "loaded report re-serializes to the checksummed bytes"
            );
        }
        assert_eq!(stats.loaded, entries.len() as u64);
        assert_eq!(
            (stats.errors, stats.segments_quarantined),
            (0, 0),
            "a torn tail at byte {cut} is recovery, never corruption"
        );
    }
    fs::remove_file(&build).ok();
    fs::remove_file(&scratch).ok();
}

#[test]
fn single_bit_flips_are_always_detected_and_quarantine_only_one_segment() {
    let build = tmp("flip-build.mcache");
    let (bytes, expected) = pristine_store(&build, 3, 2);
    let spans = record_spans(&bytes);
    let pristine: HashMap<u128, &str> = expected
        .iter()
        .map(|(fp, payload)| (*fp, payload.as_str()))
        .collect();
    let reg = msrs_engine::telemetry::registry();
    let scratch = tmp("flip-scratch.mcache");
    for (record, (start, end)) in spans.iter().enumerate() {
        // The flipped record kills its own segment; the sibling segment
        // must load untouched.
        let casualties: Vec<u128> = spans
            .iter()
            .zip(&expected)
            .filter(|((s, _), _)| (record < 3) == (*s < spans[3].0))
            .map(|(_, (fp, _))| *fp)
            .collect();
        for pos in *start..*end {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x01;
            fs::write(&scratch, &flipped).expect("scratch writable");
            let quarantined_before = reg.cache_store_segments_quarantined_total.get();
            let errors_before = reg.cache_store_load_errors_total.get();
            let (_store, entries, stats) =
                CacheStore::open(&scratch, CONFIG_FP).unwrap_or_else(|e| {
                    panic!("flip at byte {pos} (record {record}) must load, not error: {e}")
                });
            assert_eq!(
                stats.errors, 1,
                "flip at byte {pos} of record {record} must be detected"
            );
            assert_eq!(stats.segments_quarantined, 1, "flip at byte {pos}");
            assert_eq!(
                entries.len(),
                expected.len() - casualties.len(),
                "flip at byte {pos}: only the flipped record's segment is lost"
            );
            for entry in &entries {
                assert!(
                    !casualties.contains(&entry.fingerprint),
                    "flip at byte {pos}: a record from the quarantined segment was served"
                );
                assert_eq!(
                    &*entry.payload, pristine[&entry.fingerprint],
                    "flip at byte {pos}: a served record deviated from the pristine bytes"
                );
            }
            // The loss is visible process-wide, not just in the return
            // value (deltas are ≥ because sibling tests share the
            // registry).
            assert!(
                reg.cache_store_segments_quarantined_total.get() > quarantined_before,
                "flip at byte {pos}: quarantine must reach telemetry"
            );
            assert!(reg.cache_store_load_errors_total.get() > errors_before);
        }
    }
    fs::remove_file(&build).ok();
    fs::remove_file(&scratch).ok();
}

/// The record serializer and the loader agree byte-for-byte: what
/// `record_line` emits is exactly what a pristine load hands back.
#[test]
fn record_line_round_trips_through_a_pristine_load() {
    let path = tmp("record-line.mcache");
    let (bytes, expected) = pristine_store(&path, 2, 1);
    let text = String::from_utf8(bytes).expect("store is utf8");
    for (fp, payload) in &expected {
        let line = cachestore::record_line(*fp, CONFIG_FP, payload);
        assert!(
            text.contains(&line),
            "the store holds the canonical serialization of record {fp:#x}"
        );
    }
    fs::remove_file(&path).ok();
}

/// Zeroes `wall_micros` and normalizes `cache_hit` — the two fields the
/// determinism contract excludes.
fn redact(json: &mut Json) {
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else if k == "cache_hit" {
                    *v = Json::Bool(false);
                } else {
                    redact(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact),
        _ => {}
    }
}

fn redacted(line: &str) -> String {
    let mut json = Json::parse(line).expect("output line parses as JSON");
    redact(&mut json);
    json.to_string()
}

#[test]
fn warm_restart_serves_the_second_pass_from_the_store_bit_identically() {
    let path = tmp("warm-restart.mcache");
    let _ = fs::remove_file(&path);

    // A duplicate-heavy corpus over four distinct canonical forms (ids
    // vary — ids are not part of the canonical form).
    let distinct: Vec<_> = (0..4)
        .map(|seed| msrs_gen::uniform(seed, 3, 12, 3, 1, 40))
        .collect();
    let mut corpus = String::new();
    for i in 0..12 {
        corpus.push_str(&jsonl::write_instance_line(
            Some(&format!("w-{i}")),
            &distinct[i % distinct.len()],
        ));
        corpus.push('\n');
    }
    // `EngineConfig::default()` leaves the cache disabled unless
    // `MSRS_CACHE` is set — the store rides the cache, so enable it.
    let config = EngineConfig {
        threads: 1,
        cache_capacity: 1024,
        ..EngineConfig::default()
    };

    // First life: solve everything, write-through to the store.
    let engine = Engine::new(config.clone());
    let load = engine
        .attach_cache_store(&path)
        .expect("fresh store attaches");
    assert_eq!(load.loaded, 0);
    let mut out1 = Vec::new();
    let outcome = JsonlServer::new()
        .serve(&engine, corpus.as_bytes(), &mut out1, 4)
        .expect("first pass");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.stats.instances, 12);
    // Restart: dropping the engine joins the background flusher, so every
    // insert the first life made is durable before the second life opens
    // the file.
    drop(engine);

    let engine = Engine::new(config);
    let load = engine.attach_cache_store(&path).expect("store reloads");
    assert_eq!(
        load.loaded, 4,
        "one durable record per distinct canonical form"
    );
    assert_eq!((load.errors, load.segments_quarantined), (0, 0));
    let mut out2 = Vec::new();
    let outcome = JsonlServer::new()
        .serve(&engine, corpus.as_bytes(), &mut out2, 4)
        .expect("second pass");
    assert!(outcome.error.is_none());
    assert_eq!(
        outcome.stats.fast_path_hits, 12,
        "every line of the restarted pass is served from the warm-loaded cache"
    );
    assert_eq!(outcome.stats.max_resident, 0, "no request materialized");

    let second_raw: Vec<String> = String::from_utf8(out2)
        .expect("utf8 reports")
        .lines()
        .map(str::to_string)
        .collect();
    for line in &second_raw {
        let json = Json::parse(line).expect("report parses");
        assert!(
            matches!(json.get("cache_hit"), Some(Json::Bool(true))),
            "warm-restarted reports carry cache provenance: {line}"
        );
    }
    let first: Vec<String> = String::from_utf8(out1)
        .expect("utf8 reports")
        .lines()
        .map(redacted)
        .collect();
    let second: Vec<String> = second_raw.iter().map(|l| redacted(l)).collect();
    assert_eq!(
        first, second,
        "warm restart is bit-identical modulo wall_micros and cache_hit"
    );
    fs::remove_file(&path).ok();
}
