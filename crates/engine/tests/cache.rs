//! Canonical-form result cache: soundness and determinism guarantees.
//!
//! * cached and uncached reports must be **bit-identical** (every field
//!   except the `wall_micros` timings and the `cache_hit` provenance flag)
//!   across `threads = 1, 2, 8`, property-tested over random corpora that
//!   include relabelled duplicates;
//! * intra-batch dedup must fan reports out in request order with each
//!   request's own id and job numbering;
//! * capacity 0 disables caching; tiny capacities evict LRU-first.

use std::sync::{Mutex, MutexGuard};

use msrs_core::canonical::relabel;
use msrs_core::{validate, ClassId, Instance, JobId};
use msrs_engine::{telemetry, Engine, EngineConfig, SolveReport, SolveRequest};
use proptest::prelude::*;

/// Cache counters live in the process-global telemetry registry. This file
/// is its own test process, so a file-local mutex serializing the tests
/// makes registry *deltas* exactly the per-engine numbers the removed
/// `Engine::cache_stats` accessor used to report: within a locked section
/// the only cache activity is the test's own.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Counter movement across a locked section.
fn counter_delta(before: &telemetry::Snapshot, after: &telemetry::Snapshot, name: &str) -> u64 {
    after.counter(name) - before.counter(name)
}

/// Net entries added to the (cumulative, process-global) residency gauge
/// while the section's caches were alive.
fn entries_delta(before: &telemetry::Snapshot, after: &telemetry::Snapshot) -> i64 {
    after.gauge("msrs_cache_entries") - before.gauge("msrs_cache_entries")
}

fn engine(threads: usize, cache_capacity: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        cache_capacity,
        ..EngineConfig::default()
    })
}

/// Everything except the timings and cache provenance, in a directly
/// comparable form (the JSON covers every other field but the schedule).
fn comparable(report: &SolveReport) -> (String, Vec<(usize, u64)>) {
    let mut json = report.to_json();
    redact(&mut json);
    let schedule = report
        .schedule
        .assignments()
        .iter()
        .map(|a| (a.machine, a.start))
        .collect();
    (json.to_string(), schedule)
}

fn redact(json: &mut msrs_engine::json::Json) {
    use msrs_engine::json::Json;
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else if k == "cache_hit" {
                    *v = Json::Bool(false);
                } else {
                    redact(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact),
        _ => {}
    }
}

/// Random corpora with planted relabelled duplicates: a base set of small
/// instances plus, for some of them, a copy with rotated class labels and
/// reversed job order (identical canonical form, different raw form).
fn arb_corpus() -> impl Strategy<Value = Vec<Instance>> {
    let base = prop::collection::vec(
        (
            1usize..=4,
            prop::collection::vec(prop::collection::vec(0u64..=30, 1..=4), 1..=6),
        )
            .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid")),
        1..=12,
    );
    (base, prop::collection::vec(any::<usize>(), 0..=12)).prop_map(|(base, dup_picks)| {
        let mut corpus = base.clone();
        for pick in dup_picks {
            let inst = &base[pick % base.len()];
            let k = inst.num_classes();
            let class_perm: Vec<ClassId> = (0..k).map(|c| (c + 1) % k.max(1)).collect();
            let job_order: Vec<JobId> = (0..inst.num_jobs()).rev().collect();
            corpus.push(relabel(inst, &class_perm, &job_order));
        }
        corpus
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole guarantee: with the cache on (any thread count), every
    /// report — including reports served from cache or intra-batch dedup —
    /// is bit-identical to the cache-off report for the same request.
    #[test]
    fn cached_reports_are_bit_identical_to_uncached(corpus in arb_corpus()) {
        let _guard = serialized();
        let reqs: Vec<SolveRequest> = corpus
            .into_iter()
            .enumerate()
            .map(|(i, inst)| SolveRequest::with_id(format!("i{i}"), inst))
            .collect();
        let baseline: Vec<_> = engine(1, 0).solve_batch(&reqs).iter().map(comparable).collect();
        for threads in [1usize, 2, 8] {
            let before = telemetry::snapshot();
            let cached_engine = engine(threads, 1024);
            // Two passes: the first exercises misses + intra-batch dedup,
            // the second pure cache hits.
            for pass in 0..2 {
                let got: Vec<_> = cached_engine
                    .solve_batch(&reqs)
                    .iter()
                    .map(comparable)
                    .collect();
                prop_assert_eq!(
                    &got, &baseline,
                    "cache-on diverged (threads {}, pass {})", threads, pass
                );
            }
            let after = telemetry::snapshot();
            prop_assert!(
                counter_delta(&before, &after, "msrs_cache_hits_total") >= reqs.len() as u64,
                "second pass must hit"
            );
        }
    }

    /// Single-solve path: hit reports equal miss reports, and duplicates by
    /// relabelling share one cache entry.
    #[test]
    fn single_solves_hit_after_miss(corpus in arb_corpus()) {
        let _guard = serialized();
        let before = telemetry::snapshot();
        let eng = engine(1, 1024);
        for (i, inst) in corpus.iter().enumerate() {
            let req = SolveRequest::with_id(format!("s{i}"), inst.clone());
            let miss = eng.solve(&req);
            let hit = eng.solve(&req);
            prop_assert!(hit.cache_hit);
            prop_assert_eq!(comparable(&miss), comparable(&hit));
            prop_assert_eq!(validate(inst, &hit.schedule), Ok(()));
        }
        let after = telemetry::snapshot();
        let entries = entries_delta(&before, &after).max(0) as u64;
        let evictions = counter_delta(&before, &after, "msrs_cache_evictions_total");
        prop_assert!(entries + evictions <= corpus.len() as u64);
    }
}

/// Intra-batch dedup: duplicate-heavy corpora collapse to their distinct
/// canonical forms, while reports keep request order, ids, and per-request
/// job numbering.
#[test]
fn intra_batch_dedup_fans_out_in_order() {
    let _guard = serialized();
    let before = telemetry::snapshot();
    let reqs: Vec<SolveRequest> = (0..40u64)
        .map(|seed| SolveRequest::with_id(format!("t{seed}"), msrs_gen::traffic(seed, 3, 10)))
        .collect();
    let eng = engine(2, 1024);
    let reports = eng.solve_batch(&reqs);
    let after = telemetry::snapshot();
    assert_eq!(reports.len(), reqs.len());
    // 40 seeds in buckets of 10 → 4 distinct canonical forms.
    assert_eq!(counter_delta(&before, &after, "msrs_cache_misses_total"), 4);
    assert_eq!(counter_delta(&before, &after, "msrs_cache_hits_total"), 36);
    assert_eq!(entries_delta(&before, &after), 4);
    for (req, report) in reqs.iter().zip(&reports) {
        assert_eq!(req.id, report.id, "fan-out must preserve request order");
        // The schedule is remapped to this request's own job numbering.
        assert_eq!(validate(&req.instance, &report.schedule), Ok(()));
        assert_eq!(report.schedule.makespan(&req.instance), report.makespan);
    }
    // All members of one bucket agree on everything but id/schedule layout.
    for chunk in reports.chunks(10) {
        for r in chunk {
            assert_eq!(r.makespan, chunk[0].makespan);
            assert_eq!(r.winner, chunk[0].winner);
            assert_eq!(r.certified_horizon, chunk[0].certified_horizon);
        }
    }
    // Exactly the first occurrence of each bucket is a fresh solve.
    let fresh: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.cache_hit)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(fresh, vec![0, 10, 20, 30]);
}

/// Capacity 0 must behave exactly like the pre-cache engine: no hits, no
/// dedup, every solve fresh — and still identical reports.
#[test]
fn capacity_zero_disables_caching_and_dedup() {
    let _guard = serialized();
    let before = telemetry::snapshot();
    let reqs: Vec<SolveRequest> = (0..20u64)
        .map(|seed| SolveRequest::with_id(format!("t{seed}"), msrs_gen::traffic(seed, 3, 10)))
        .collect();
    let eng = engine(1, 0);
    let reports = eng.solve_batch(&reqs);
    let after = telemetry::snapshot();
    assert_eq!(counter_delta(&before, &after, "msrs_cache_hits_total"), 0);
    assert_eq!(counter_delta(&before, &after, "msrs_cache_misses_total"), 0);
    assert_eq!(entries_delta(&before, &after), 0);
    // The most recently constructed cache is this engine's: disabled.
    assert_eq!(after.gauge("msrs_cache_capacity"), 0);
    assert!(reports.iter().all(|r| !r.cache_hit));
    let twice = eng.solve_batch(&reqs);
    for (a, b) in reports.iter().zip(&twice) {
        assert_eq!(comparable(a), comparable(b));
    }
}

/// A deadline (opt-in nondeterminism) bypasses the cache even when capacity
/// is configured.
#[test]
fn deadline_bypasses_the_cache() {
    let _guard = serialized();
    let before = telemetry::snapshot();
    let eng = Engine::new(EngineConfig {
        threads: 1,
        cache_capacity: 1024,
        deadline: Some(std::time::Duration::from_secs(3600)),
        ..EngineConfig::default()
    });
    let inst = msrs_gen::traffic(1, 3, 10);
    let a = eng.solve_instance(&inst);
    let b = eng.solve_instance(&inst);
    let after = telemetry::snapshot();
    assert!(!a.cache_hit && !b.cache_hit);
    assert_eq!(counter_delta(&before, &after, "msrs_cache_hits_total"), 0);
    assert_eq!(counter_delta(&before, &after, "msrs_cache_misses_total"), 0);
    assert_eq!(entries_delta(&before, &after), 0);
}

/// LRU pressure end-to-end: a capacity-2 engine serving three distinct
/// forms round-robin keeps evicting, but reports stay correct.
#[test]
fn tiny_capacity_evicts_but_stays_correct() {
    let _guard = serialized();
    let before = telemetry::snapshot();
    let eng = engine(1, 2);
    let insts: Vec<Instance> = (0..3).map(|b| msrs_gen::traffic(b * 10, 2, 10)).collect();
    let uncached = engine(1, 0);
    for round in 0..3 {
        for inst in &insts {
            let got = eng.solve_instance(inst);
            let want = uncached.solve_instance(inst);
            assert_eq!(
                comparable(&got),
                comparable(&want),
                "round {round} diverged"
            );
        }
    }
    let after = telemetry::snapshot();
    assert!(counter_delta(&before, &after, "msrs_cache_evictions_total") > 0);
    assert!(entries_delta(&before, &after) <= 2);
}
