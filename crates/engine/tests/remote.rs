//! End-to-end tests of the remote worker fleet — `msrs dispatch
//! --listen` semantics against real `msrs worker --connect` child
//! processes over loopback TCP:
//!
//! * **bit-identity** — a remote-only fleet and a mixed local/remote
//!   fleet both merge to the same report stream as a single-process
//!   sequential batch run (modulo `wall_micros` and `cache_hit`);
//! * **handshake** — a worker whose engine configuration fingerprint
//!   differs is refused with a structured error and exits non-zero,
//!   without perturbing the run;
//! * **leases + reconnect** — an injected mid-shard disconnect requeues
//!   the shard under a fresh attempt and the worker redials with backoff;
//!   a stalled worker (heartbeat silence) has its lease revoked, and its
//!   late `#done` is discarded as a stale attempt;
//! * **hedging** — a deterministic straggler gets a speculative duplicate
//!   attempt on an idle worker and the first verified `#done` commits;
//! * **torn reports** — a remote worker dying mid-report-line is a
//!   counted retry, never a corrupt byte in the merged stream;
//! * **checkpointed resume** — an interrupted remote-only run resumes to
//!   a byte-identical output, property-tested across fleet shapes and
//!   interruption points.

use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use proptest::prelude::*;

use msrs_engine::dispatch::DispatchConfig;
use msrs_engine::json::Json;
use msrs_engine::stream::JsonlServer;
use msrs_engine::{dispatch, jsonl, Engine, EngineConfig, RemoteHub};

/// The real `msrs` binary, built by Cargo for this test run.
const MSRS_BIN: &str = env!("CARGO_BIN_EXE_msrs");

fn engine(threads: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
}

/// A duplicate-heavy corpus with a comment and a blank line, so shard
/// boundaries run over *meaningful* lines, not physical ones.
fn corpus_text(n: u64) -> String {
    let mut text = String::from("# remote dispatch test corpus\n\n");
    for seed in 0..n {
        text.push_str(&jsonl::write_instance_line(
            Some(&format!("r-{seed}")),
            &msrs_gen::traffic(seed, 3, 4),
        ));
        text.push('\n');
    }
    text
}

/// Zeroes `wall_micros` and normalizes `cache_hit` — the two fields the
/// determinism contract excludes.
fn redact(json: &mut Json) {
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs.iter_mut() {
                if k == "wall_micros" {
                    *v = Json::Num(0);
                } else if k == "cache_hit" {
                    *v = Json::Bool(false);
                } else {
                    redact(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(redact),
        _ => {}
    }
}

fn redacted(line: &str) -> String {
    let mut json = Json::parse(line).expect("output line parses as JSON");
    redact(&mut json);
    json.to_string()
}

/// The single-process sequential reference: `msrs batch` semantics over
/// the same corpus and shard size.
fn reference_run(text: &str, shard_size: usize) -> Vec<String> {
    let mut out = Vec::new();
    let outcome = JsonlServer::new()
        .serve(&engine(1), text.as_bytes(), &mut out, shard_size)
        .expect("reference batch run");
    assert!(outcome.error.is_none());
    String::from_utf8(out)
        .expect("utf8 reports")
        .lines()
        .map(redacted)
        .collect()
}

fn read_redacted(path: &Path) -> Vec<String> {
    fs::read_to_string(path)
        .expect("output file readable")
        .lines()
        .map(redacted)
        .collect()
}

/// A scratch path unique to this process and test.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("msrs-remote-test-{}-{name}", std::process::id()))
}

/// A spawned `msrs worker --connect` child, killed on drop so a test
/// failure never leaks a redialing process.
struct WorkerGuard(Child);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a remote worker dialing `addr`; `fault` becomes its
/// process-local `MSRS_FAULT`, `extra` extends the argv.
fn spawn_worker(addr: &str, fault: Option<&str>, extra: &[&str]) -> WorkerGuard {
    let mut cmd = Command::new(MSRS_BIN);
    cmd.args(["worker", "--connect", addr, "--threads", "1"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = fault {
        cmd.env("MSRS_FAULT", spec);
    }
    WorkerGuard(cmd.spawn().expect("worker child spawns"))
}

/// A fleet config: `workers` local children plus the remote listener.
/// `config_fp` matches what `msrs worker` computes from default engine
/// flags, so handshakes succeed.
fn fleet_config(workers: usize, shard_size: usize) -> DispatchConfig {
    let worker_cmd = if workers > 0 {
        vec![
            MSRS_BIN.to_string(),
            "worker".to_string(),
            "--threads".to_string(),
            "1".to_string(),
        ]
    } else {
        Vec::new()
    };
    DispatchConfig {
        worker_cmd,
        workers,
        shard_size,
        retry_backoff: Duration::from_millis(10),
        config_fp: EngineConfig::default().content_fingerprint(),
        ..DispatchConfig::default()
    }
}

fn bind_hub() -> (RemoteHub, String) {
    let hub = RemoteHub::bind("127.0.0.1:0").expect("loopback hub binds");
    let addr = hub.local_addr().to_string();
    (hub, addr)
}

#[test]
fn remote_only_fleet_matches_batch_reference() {
    let text = corpus_text(18);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    let _w1 = spawn_worker(&addr, None, &[]);
    let _w2 = spawn_worker(&addr, None, &[]);
    let out = tmp("remote-only.jsonl");
    let cfg = fleet_config(0, 4);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("remote-only dispatch runs");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(!outcome.interrupted);
    assert_eq!(outcome.stats.instances, 18);
    assert!(
        outcome.remote_workers >= 1,
        "a remote-only fleet cannot progress without a joined worker"
    );
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

#[test]
fn empty_corpus_with_a_remote_only_fleet_terminates_without_any_worker() {
    // No worker ever dials in: the coordinator must still discover that the
    // source is empty and return instead of waiting for a runner forever.
    let (hub, _addr) = bind_hub();
    let out = tmp("remote-empty.jsonl");
    let cfg = fleet_config(0, 4);
    let outcome = dispatch::dispatch_fleet(
        Cursor::new(String::new()),
        &out,
        None,
        &cfg,
        None,
        Some(hub),
    )
    .expect("empty remote-only dispatch runs");
    assert!(outcome.error.is_none());
    assert_eq!(outcome.shards_total, 0);
    assert_eq!(outcome.stats.instances, 0);
    assert_eq!(outcome.remote_workers, 0);
    assert_eq!(fs::read_to_string(&out).expect("out file exists"), "");
    fs::remove_file(&out).ok();
}

#[test]
fn mixed_local_and_remote_fleet_matches_batch_reference() {
    let text = corpus_text(18);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    let _remote = spawn_worker(&addr, None, &[]);
    let out = tmp("mixed.jsonl");
    let cfg = fleet_config(1, 4);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("mixed fleet dispatch runs");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert_eq!(outcome.stats.instances, 18);
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

/// A worker built with a different engine configuration (here:
/// `--no-eptas`, which changes the content fingerprint and thus the
/// results it would produce) is refused at the handshake with a
/// structured error, exits non-zero, and the run is unperturbed.
#[test]
fn mismatched_worker_is_rejected_at_the_handshake() {
    // A longer corpus than the other tests: the listener must outlive the
    // mismatched worker's handshake even when the test host is loaded.
    let text = corpus_text(40);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    let mut rejected = Command::new(MSRS_BIN)
        .args([
            "worker",
            "--connect",
            &addr,
            "--no-eptas",
            "--reconnect-max",
            "1",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mismatched worker spawns");
    let out = tmp("reject.jsonl");
    let cfg = fleet_config(1, 4);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("dispatch runs despite the rejected worker");
    assert!(outcome.error.is_none());
    assert_eq!(read_redacted(&out), reference);
    let status = rejected.wait().expect("rejected worker exits");
    assert!(
        !status.success(),
        "a rejected worker must exit non-zero, got {status:?}"
    );
    let mut stderr = String::new();
    use std::io::Read as _;
    rejected
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr readable");
    assert!(
        stderr.contains("handshake"),
        "rejection reason surfaces on stderr: {stderr:?}"
    );
    fs::remove_file(&out).ok();
}

/// An injected mid-shard disconnect drops the TCP session: the lease
/// lapses, the shard is requeued under a fresh attempt, the worker
/// redials (counted as a reconnect), and the merged output is unchanged.
#[test]
fn disconnected_worker_reconnects_and_output_is_identical() {
    let text = corpus_text(18);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    let _worker = spawn_worker(&addr, Some("disconnect:shard=1"), &["--reconnect-ms", "50"]);
    let out = tmp("disconnect.jsonl");
    let cfg = fleet_config(0, 4);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("dispatch survives the disconnect");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(outcome.retries >= 1, "the dropped shard was requeued");
    assert!(
        outcome.reconnects >= 1,
        "the worker redialed and reported its prior session"
    );
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

/// A stalled worker (heartbeats suppressed mid-solve) trips the
/// heartbeat-silence deadline: the lease is revoked (zombie, counted as a
/// lease expiry), the shard requeued, and the zombie's eventual late
/// `#done` is discarded as a stale attempt — never committed twice.
#[test]
fn stalled_worker_lease_expires_and_its_late_done_is_dropped() {
    let text = corpus_text(18);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    let _worker = spawn_worker(
        &addr,
        Some("stall:shard=1,ms=1200"),
        &["--heartbeat-ms", "50"],
    );
    let out = tmp("stall.jsonl");
    let mut cfg = fleet_config(0, 4);
    cfg.heartbeat_timeout = Duration::from_millis(300);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("dispatch survives the stall");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(outcome.lease_expiries >= 1, "the silence revoked the lease");
    assert!(
        outcome.stale_drops >= 1,
        "the zombie's late #done was discarded, not committed"
    );
    assert!(outcome.retries >= 1, "the revoked shard was requeued");
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

/// A worker that emits its `#done` twice (duplicate delivery) commits
/// exactly once: the duplicate is discarded against the committed set and
/// the merged output carries no duplicate reports.
#[test]
fn duplicate_done_commits_exactly_once() {
    let text = corpus_text(18);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    // Shard 2 sits mid-corpus, so the coordinator keeps reading from the
    // worker and must confront the duplicate: either it drains both
    // `#done` lines back-to-back (stale drop against the committed set)
    // or the duplicate lands after the next assignment (a mismatch that
    // cleanly fails the attempt and retries — the worker redials).
    let _worker = spawn_worker(&addr, Some("dup-done:shard=2"), &["--reconnect-ms", "50"]);
    let out = tmp("dup-done.jsonl");
    let cfg = fleet_config(0, 4);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("dispatch survives the duplicate");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(
        outcome.stale_drops >= 1 || outcome.retries >= 1,
        "the duplicate #done was dropped (or at worst forced a clean retry)"
    );
    assert_eq!(
        read_redacted(&out),
        reference,
        "no duplicate report ever reaches the merged stream"
    );
    fs::remove_file(&out).ok();
}

/// A deterministic straggler (injected 2.5 s sleep on one shard) is
/// hedged: once the trailing median is established and a worker idles,
/// a speculative duplicate attempt launches and its `#done` commits.
#[test]
fn straggler_is_hedged_and_the_first_verified_done_commits() {
    let text = corpus_text(18);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    // Both workers carry the fault, but it fires on attempt 1 only — the
    // hedge runs as attempt 2 and is fast on either worker.
    let _w1 = spawn_worker(&addr, Some("slow:shard=4,ms=2500"), &[]);
    let _w2 = spawn_worker(&addr, Some("slow:shard=4,ms=2500"), &[]);
    let out = tmp("hedge.jsonl");
    let mut cfg = fleet_config(0, 4);
    cfg.hedge_multiplier = 2.0;
    cfg.hedge_min = Duration::from_millis(50);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("dispatch hedges the straggler");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(outcome.hedges_launched >= 1, "the straggler was hedged");
    assert!(
        outcome.hedges_won >= 1,
        "the speculative twin finished first and committed"
    );
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

/// A worker that solves its shard, then goes dark *before* sending its
/// cache fills (`cache-stale-fill`): heartbeat silence revokes the lease,
/// the shard is requeued, and the zombie's late fills are refused at the
/// cache authority — a revoked attempt can never write the shared store.
#[test]
fn zombie_cache_fills_are_dropped_and_never_reach_the_store() {
    // Canonically distinct lines: shard 1 must still be unfilled when it
    // probes, so its worker owes fills — the fault delays exactly those.
    let mut text = String::from("# stale fill corpus\n\n");
    for i in 0..18u64 {
        text.push_str(&jsonl::write_instance_line(
            Some(&format!("s-{i}")),
            &msrs_gen::uniform(i, 3, 12, 3, 1, 40),
        ));
        text.push('\n');
    }
    let reference = reference_run(&text, 4);
    let store = tmp("stale-fill.mcache");
    fs::remove_file(&store).ok();
    let (hub, addr) = bind_hub();
    let _worker = spawn_worker(
        &addr,
        Some("cache-stale-fill:shard=1,ms=1200"),
        &["--heartbeat-ms", "50", "--reconnect-ms", "50"],
    );
    let out = tmp("stale-fill.jsonl");
    let mut cfg = fleet_config(0, 4);
    cfg.heartbeat_timeout = Duration::from_millis(300);
    cfg.cache_path = Some(store.clone());
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("dispatch survives the stale fill");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(
        outcome.lease_expiries >= 1,
        "the dark fill window revoked the lease"
    );
    assert!(
        outcome.stale_fills_dropped >= 1,
        "the zombie's fills were refused at the cache authority"
    );
    assert!(outcome.retries >= 1, "the revoked shard was requeued");
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
    fs::remove_file(&store).ok();
}

/// A remote worker killed mid-report-line (torn write, no newline) is a
/// counted clean failure: the shard is retried on a surviving worker and
/// the torn bytes never reach the merged stream.
#[test]
fn remote_worker_dying_mid_report_line_never_tears_the_merged_stream() {
    let text = corpus_text(18);
    let reference = reference_run(&text, 4);
    let (hub, addr) = bind_hub();
    // Whichever worker draws shard 3's first attempt dies mid-line; the
    // other survives and serves the retry (the fault fires on attempt 1
    // only).
    let _w1 = spawn_worker(&addr, Some("partial:shard=3"), &[]);
    let _w2 = spawn_worker(&addr, Some("partial:shard=3"), &[]);
    let out = tmp("torn.jsonl");
    let cfg = fleet_config(0, 4);
    let outcome = dispatch::dispatch_fleet(Cursor::new(text), &out, None, &cfg, None, Some(hub))
        .expect("dispatch survives the torn report");
    assert!(outcome.error.is_none());
    assert!(outcome.quarantined.is_empty());
    assert!(outcome.retries >= 1, "the torn shard was retried");
    assert_eq!(read_redacted(&out), reference);
    fs::remove_file(&out).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Interrupt a remote-only run after a random shard, then resume it
    /// with a fresh fleet: the final output file is byte-identical to
    /// the single-process reference across fleet shapes and interruption
    /// points — the checkpoint is transport-agnostic.
    #[test]
    fn interrupted_remote_dispatch_resumes_bit_identically(
        stop in 1usize..4,
        fleet in 1usize..3,
    ) {
        let text = corpus_text(18);
        let reference = reference_run(&text, 4);
        let out = tmp(&format!("resume-{stop}-{fleet}.jsonl"));
        let ckpt = tmp(&format!("resume-{stop}-{fleet}.ckpt"));
        fs::remove_file(&out).ok();
        fs::remove_file(&ckpt).ok();

        let (hub, addr) = bind_hub();
        let _first_fleet: Vec<WorkerGuard> =
            (0..fleet).map(|_| spawn_worker(&addr, None, &[])).collect();
        let mut cfg = fleet_config(0, 4);
        cfg.stop_after_shards = Some(stop);
        let first = dispatch::dispatch_fleet(
            Cursor::new(text.clone()), &out, Some(&ckpt), &cfg, None, Some(hub),
        ).expect("interrupted remote run");
        prop_assert!(first.error.is_none());
        prop_assert!(first.interrupted, "5 shards total, stopped after ≤ 3");

        let (hub2, addr2) = bind_hub();
        let _second_fleet: Vec<WorkerGuard> =
            (0..fleet).map(|_| spawn_worker(&addr2, None, &[])).collect();
        cfg.stop_after_shards = None;
        let second = dispatch::dispatch_fleet(
            Cursor::new(text), &out, Some(&ckpt), &cfg, None, Some(hub2),
        ).expect("resumed remote run");
        prop_assert!(second.error.is_none());
        prop_assert!(!second.interrupted);
        prop_assert!(second.quarantined.is_empty());
        prop_assert_eq!(second.shards_resumed, first.shards_total);
        prop_assert_eq!(second.shards_total, 5);
        prop_assert_eq!(second.stats.instances, 18);
        prop_assert_eq!(read_redacted(&out), reference);
        fs::remove_file(&out).ok();
        fs::remove_file(&ckpt).ok();
    }
}
