//! # msrs-exact — exact branch-and-bound solver for small MSRS instances
//!
//! Ground truth for the empirical approximation-ratio experiments (E4): an
//! event-driven branch-and-bound over *semi-active* schedules.
//!
//! ## Completeness
//!
//! Any feasible schedule can be left-shifted (each job moved to the maximum
//! of its machine predecessor's and class predecessor's completion) without
//! increasing the makespan; in the fixpoint every start time is 0 or the
//! completion time of another job. The search therefore branches
//! chronologically over *events* (time 0 and job completions): at each event
//! it picks every subset of available classes (class not currently running)
//! of size at most the number of idle machines, every distinct remaining job
//! size per chosen class, and also the "start nothing, wait" branch — which
//! exactly enumerates all semi-active schedules.
//!
//! ## Bounding, symmetry, and parallelism
//!
//! Nodes are pruned against the incumbent via two lower bounds (area bound
//! over remaining + running load; per-class serialization bound) and a
//! class-symmetry dominance rule: two idle classes with identical remaining
//! size multisets are interchangeable, so only the lowest-labelled one is
//! branched on ([`BoundConfig::symmetry`]; E9 ablates all three). The
//! incumbent is seeded with the best of `Algorithm_3/2`, `Algorithm_5/3` and
//! the baselines — or a caller-provided schedule via [`solve_warm`] — stored
//! in an atomic (guide: *Rust Atomics and Locks*) and shared across
//! rayon-parallelized root branches.
//!
//! ## The allocation-free hot loop
//!
//! The search mutates a single `Node` per task and *undoes* each branch on
//! backtrack instead of cloning child nodes; candidate lists live in
//! per-depth scratch buffers that are reused across siblings. After warmup
//! the node loop performs no heap allocation. Node accounting against the
//! shared budget is batched: each task *reserves* up to
//! [`CHECK_MASK`]` + 1` node slots from the shared `AtomicU64` at a time,
//! spends them locally, and returns unused slots on exit — one atomic RMW
//! and one [`CancelToken`] poll per `CHECK_MASK + 1` nodes instead of
//! per-node traffic, with the final counter still equal to the exact number
//! of explored nodes.
//!
//! ## Cancellation
//!
//! [`solve`] / [`solve_configured`] accept a [`CancelToken`]; tasks poll it
//! when replenishing their node reservation (every at most
//! [`CHECK_MASK`]` + 1` nodes) and unwind cooperatively, so a wall-clock
//! deadline bounds the search's runtime (status [`SolveOutcome::Cancelled`])
//! instead of letting a large node budget blow past it. [`optimal`] keeps
//! the budget-only interface.
//!
//! ## Determinism
//!
//! The proven *makespan* is deterministic regardless of thread count. With
//! more than one ambient pool thread, however, the root branches race on
//! the shared incumbent, so the explored-`nodes` count, tie-broken optimal
//! *schedules*, and Optimal-vs-Exhausted outcomes near the node budget can
//! vary run to run. Callers needing bit-reproducible results (the engine's
//! report paths, the E9 node-count ablation) pin the solve to one thread
//! via `rayon::ThreadPoolBuilder::new().num_threads(1).build()?.install(…)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use rayon::prelude::*;

use msrs_core::cancel::{CancelToken, CHECK_MASK};
use msrs_core::{
    bounds::lower_bound, validate, Assignment, ClassId, Instance, MachineId, Schedule, Time,
};

/// Resource limits for the exact search.
#[derive(Debug, Clone, Copy)]
pub struct SolveLimits {
    /// Maximum number of search nodes before giving up.
    pub max_nodes: u64,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            max_nodes: 20_000_000,
        }
    }
}

/// Terminal state of a cancellable exact solve (see [`solve`]).
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    /// The search completed: makespan proven optimal.
    Optimal(ExactResult),
    /// The node budget ran out before a proof.
    Exhausted {
        /// Nodes explored before giving up.
        nodes: u64,
    },
    /// The [`CancelToken`] fired (deadline or explicit cancellation) before
    /// a proof; the search unwound cooperatively within
    /// [`CHECK_MASK`]` + 1` nodes of the trigger.
    Cancelled {
        /// Nodes explored before cancellation.
        nodes: u64,
    },
}

/// Which pruning devices cut the search — ablation knob for the E9
/// experiment (all enabled by default; disabling one shows how much work
/// that device saves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundConfig {
    /// The area bound `t + ⌈(remaining + running residual)/m⌉`.
    pub area: bool,
    /// The per-class serialization bound `class_end + class_remaining`.
    pub class_serialization: bool,
    /// Class-symmetry dominance: at any node, two idle classes with
    /// identical remaining size multisets are interchangeable (swapping
    /// their labels is a state isomorphism), so candidates of the
    /// higher-labelled class are skipped. Sound for the proven makespan;
    /// collapses the factorial blowup of instances with many identical
    /// classes.
    pub symmetry: bool,
}

impl Default for BoundConfig {
    fn default() -> Self {
        BoundConfig {
            area: true,
            class_serialization: true,
            symmetry: true,
        }
    }
}

/// Outcome of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The optimal makespan.
    pub makespan: Time,
    /// An optimal schedule witnessing it.
    pub schedule: Schedule,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
}

/// State shared by the parallel root-branch tasks. Owned (instance clone,
/// token clone) rather than borrowed: root branches run as `'static` jobs
/// on the persistent worker pool, which cannot hold stack borrows — the
/// one-time instance clone is noise next to the search it seeds.
struct Shared {
    inst: Instance,
    m: usize,
    bounds: BoundConfig,
    best: AtomicU64,
    best_schedule: Mutex<Schedule>,
    nodes: AtomicU64,
    max_nodes: u64,
    overflowed: AtomicBool,
    cancel: Option<CancelToken>,
    cancelled: AtomicBool,
}

/// One job still to schedule: `(size, original job id)`.
type Pending = (Time, usize);

#[derive(Clone)]
struct Node {
    /// Current event time.
    t: Time,
    /// Running jobs: `(class, end, machine)`, unordered (every consumer is
    /// order-insensitive, which is what lets undo re-push entries freely).
    running: Vec<(ClassId, Time, MachineId)>,
    /// Remaining jobs per class (sorted descending by size).
    remaining: Vec<Vec<Pending>>,
    /// Total remaining load.
    remaining_load: Time,
    /// Idle machines, sorted *descending* so the smallest id is an O(1)
    /// `pop()` in the hot loop.
    idle: Vec<MachineId>,
    /// Partial assignment (original job ids).
    partial: Vec<Option<Assignment>>,
    /// Canonical ordering: at the current event, only classes `≥ min_class`
    /// may start (start-sets at one time are enumerated in class order, so no
    /// set is explored twice).
    min_class: ClassId,
}

/// Everything needed to reverse one [`Node::apply_start`].
struct StartUndo {
    c: ClassId,
    i: usize,
    p: Time,
    job: usize,
    machine: MachineId,
    old_min_class: ClassId,
}

/// Everything needed to reverse one [`Node::apply_advance`]; the suspended
/// running entries themselves live on the shared `resumed` scratch stack.
struct AdvanceUndo {
    old_t: Time,
    old_min_class: ClassId,
    completed: usize,
}

impl Node {
    fn is_done(&self) -> bool {
        self.remaining_load_count() == 0
    }

    fn remaining_load_count(&self) -> usize {
        self.remaining.iter().map(Vec::len).sum()
    }

    fn makespan_now(&self) -> Time {
        self.running
            .iter()
            .map(|&(_, e, _)| e)
            .max()
            .unwrap_or(self.t)
    }

    /// Lower bound on any completion of this node.
    fn bound(&self, m: usize, cfg: BoundConfig) -> Time {
        let mut lb = self.makespan_now();
        // Area bound: remaining load plus running residuals over m machines.
        if cfg.area {
            let residual: Time = self
                .running
                .iter()
                .map(|&(_, e, _)| e.saturating_sub(self.t))
                .sum();
            lb = lb.max(self.t + (self.remaining_load + residual).div_ceil(m as Time));
        }
        if !cfg.class_serialization {
            return lb;
        }
        // Class serialization bound.
        for (c, jobs) in self.remaining.iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            let class_end = self
                .running
                .iter()
                .filter(|&&(rc, _, _)| rc == c)
                .map(|&(_, e, _)| e)
                .max()
                .unwrap_or(self.t)
                .max(self.t);
            let load: Time = jobs.iter().map(|&(p, _)| p).sum();
            lb = lb.max(class_end + load);
        }
        lb
    }

    fn class_running(&self, c: ClassId) -> bool {
        self.running.iter().any(|&(rc, _, _)| rc == c)
    }

    /// Starts candidate `(c, i)` now: consumes the smallest idle machine and
    /// the `i`-th remaining job of class `c`. Reversed by [`Node::undo_start`].
    fn apply_start(&mut self, c: ClassId, i: usize) -> StartUndo {
        let machine = self.idle.pop().expect("caller checked an idle machine");
        let (p, job) = self.remaining[c].remove(i);
        self.remaining_load -= p;
        self.partial[job] = Some(Assignment {
            machine,
            start: self.t,
        });
        self.running.push((c, self.t + p, machine));
        let old_min_class = self.min_class;
        self.min_class = c + 1;
        StartUndo {
            c,
            i,
            p,
            job,
            machine,
            old_min_class,
        }
    }

    fn undo_start(&mut self, u: StartUndo) {
        self.min_class = u.old_min_class;
        // The entry may no longer be last: a child's advance/undo cycle
        // restores `running` as a multiset, not in order. The machine id
        // identifies it uniquely (one running job per machine).
        let pos = self
            .running
            .iter()
            .position(|&(_, _, m)| m == u.machine)
            .expect("started job is still running at undo");
        self.running.swap_remove(pos);
        self.partial[u.job] = None;
        self.remaining_load += u.p;
        self.remaining[u.c].insert(u.i, (u.p, u.job));
        self.idle.push(u.machine);
    }

    /// Advances to the next completion event, parking the completed running
    /// entries on `resumed` for the undo. Returns `None` if no job is
    /// running (a dead end when work remains).
    fn apply_advance(
        &mut self,
        resumed: &mut Vec<(ClassId, Time, MachineId)>,
    ) -> Option<AdvanceUndo> {
        let next = self.running.iter().map(|&(_, e, _)| e).min()?;
        let old_t = self.t;
        self.t = next;
        let mut completed = 0usize;
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].1 <= next {
                let entry = self.running.swap_remove(i);
                self.idle.push(entry.2);
                resumed.push(entry);
                completed += 1;
            } else {
                i += 1;
            }
        }
        // Descending, so the smallest idle machine stays an O(1) pop.
        self.idle.sort_unstable_by(|a, b| b.cmp(a));
        let old_min_class = self.min_class;
        self.min_class = 0;
        Some(AdvanceUndo {
            old_t,
            old_min_class,
            completed,
        })
    }

    fn undo_advance(&mut self, u: AdvanceUndo, resumed: &mut Vec<(ClassId, Time, MachineId)>) {
        self.min_class = u.old_min_class;
        self.t = u.old_t;
        for _ in 0..u.completed {
            let entry = resumed.pop().expect("undo stack balanced");
            let pos = self
                .idle
                .iter()
                .position(|&m| m == entry.2)
                .expect("machine was idled by the advance");
            // Removing the re-busied machines from the sorted union restores
            // the previous (still sorted) idle list.
            self.idle.remove(pos);
            self.running.push(entry);
        }
    }
}

/// Candidate starts at the current event, written into the caller's scratch
/// buffer: one (class, index-of-distinct-size) choice per class, skipping
/// classes dominated by an identical lower-labelled idle class when
/// `cfg.symmetry` is on.
fn candidate_starts_into(
    node: &Node,
    best: Time,
    cfg: BoundConfig,
    out: &mut Vec<(ClassId, usize)>,
) {
    out.clear();
    'classes: for (c, jobs) in node.remaining.iter().enumerate().skip(node.min_class) {
        if jobs.is_empty() {
            continue;
        }
        if node.class_running(c) {
            continue; // class busy
        }
        if cfg.symmetry {
            // Dominance: an idle class c' < c with the identical remaining
            // multiset makes every c-branch isomorphic (swap the labels of
            // c and c') to a branch already enumerated for c'.
            for (c2, jobs2) in node.remaining.iter().enumerate().take(c) {
                if jobs2.len() == jobs.len()
                    && !jobs2.is_empty()
                    && jobs2
                        .iter()
                        .map(|&(p, _)| p)
                        .eq(jobs.iter().map(|&(p, _)| p))
                    && !node.class_running(c2)
                {
                    continue 'classes;
                }
            }
        }
        let mut last_size = None;
        for (i, &(p, _)) in jobs.iter().enumerate() {
            if last_size == Some(p) {
                continue; // identical jobs are interchangeable
            }
            last_size = Some(p);
            if node.t + p < best {
                out.push((c, i));
            }
        }
    }
}

/// One root-branch task: a mutable [`Node`] with undo stacks, per-depth
/// candidate scratch buffers, and a locally batched slice of the shared
/// node budget.
struct Search<'b> {
    sh: &'b Shared,
    node: Node,
    /// Per-depth candidate buffers, reused across sibling subtrees.
    cands: Vec<Vec<(ClassId, usize)>>,
    /// Scratch stack of running entries suspended by in-flight advances.
    resumed: Vec<(ClassId, Time, MachineId)>,
    /// Node slots reserved from `sh.nodes` but not yet spent.
    reserved: u64,
    /// Terminal flag (budget exhausted or cancelled) — unwinds the task.
    stop: bool,
}

impl<'b> Search<'b> {
    fn new(sh: &'b Shared, node: Node) -> Self {
        Search {
            sh,
            node,
            cands: Vec::new(),
            resumed: Vec::new(),
            reserved: 0,
            stop: false,
        }
    }

    /// Spends one node slot, replenishing the local reservation from the
    /// shared counter (and polling cancellation) every `CHECK_MASK + 1`
    /// nodes at most. Returns `false` when the task must unwind.
    fn take_node(&mut self) -> bool {
        if self.stop {
            return false;
        }
        if self.reserved == 0 && !self.replenish() {
            self.stop = true;
            return false;
        }
        self.reserved -= 1;
        true
    }

    /// Reserves up to `CHECK_MASK + 1` node slots. The one place the task
    /// touches shared state: one atomic RMW plus one cancellation poll per
    /// batch.
    fn replenish(&mut self) -> bool {
        if self.sh.overflowed.load(Ordering::Relaxed) || self.sh.cancelled.load(Ordering::Relaxed) {
            return false;
        }
        if let Some(token) = self.sh.cancel.as_ref() {
            if token.is_cancelled() {
                self.sh.cancelled.store(true, Ordering::Relaxed);
                return false;
            }
        }
        let chunk = CHECK_MASK + 1;
        let base = self.sh.nodes.fetch_add(chunk, Ordering::Relaxed);
        if base >= self.sh.max_nodes {
            self.sh.nodes.fetch_sub(chunk, Ordering::Relaxed);
            self.sh.overflowed.store(true, Ordering::Relaxed);
            return false;
        }
        let usable = chunk.min(self.sh.max_nodes - base);
        if usable < chunk {
            // Give back the slice beyond the budget so the counter stays an
            // exact explored-node count.
            self.sh.nodes.fetch_sub(chunk - usable, Ordering::Relaxed);
        }
        self.reserved = usable;
        true
    }

    /// Returns unspent reservation to the shared counter (task exit).
    fn finish(&mut self) {
        if self.reserved > 0 {
            self.sh.nodes.fetch_sub(self.reserved, Ordering::Relaxed);
            self.reserved = 0;
        }
    }

    fn record_incumbent(&self) {
        let cmax = self.node.makespan_now();
        if cmax < self.sh.best.fetch_min(cmax, Ordering::Relaxed) {
            let assignments: Vec<Assignment> = self
                .node
                .partial
                .iter()
                .map(|a| a.expect("done node has all jobs placed"))
                .collect();
            let mut guard = self.sh.best_schedule.lock();
            // Re-check under the lock (another thread may have won the race).
            if cmax <= self.sh.best.load(Ordering::Relaxed) {
                *guard = Schedule::new(assignments);
            }
        }
    }

    fn dfs(&mut self, depth: usize) {
        if !self.take_node() {
            return;
        }
        let best = self.sh.best.load(Ordering::Relaxed);
        if self.node.bound(self.sh.m, self.sh.bounds) >= best {
            return;
        }
        if self.node.is_done() {
            self.record_incumbent();
            return;
        }

        if self.cands.len() <= depth {
            self.cands.push(Vec::new());
        }
        let mut cands = std::mem::take(&mut self.cands[depth]);
        candidate_starts_into(&self.node, best, self.sh.bounds, &mut cands);
        // Branch 1..k: start one candidate now (the recursion re-enters this
        // function at the same time t with the machine consumed, which
        // composes to all subsets of candidates).
        if !self.node.idle.is_empty() {
            for &(c, i) in &cands {
                let undo = self.node.apply_start(c, i);
                self.dfs(depth + 1);
                self.node.undo_start(undo);
                if self.stop {
                    break;
                }
            }
        }
        // Branch 0: start nothing (more) at this event; wait for the next
        // completion.
        if !self.stop {
            if let Some(undo) = self.node.apply_advance(&mut self.resumed) {
                self.dfs(depth + 1);
                self.node.undo_advance(undo, &mut self.resumed);
            }
        }
        // Return the candidate buffer for reuse by the next sibling.
        self.cands[depth] = cands;
    }
}

fn initial_incumbent(inst: &Instance) -> (Time, Schedule) {
    let mut best: Option<(Time, Schedule)> = None;
    for r in [
        msrs_approx::three_halves(inst),
        msrs_approx::five_thirds(inst),
        msrs_approx::baselines::merged_lpt(inst),
        msrs_approx::baselines::hebrard_greedy(inst),
        msrs_approx::baselines::list_scheduler(inst),
    ] {
        debug_assert_eq!(validate(inst, &r.schedule), Ok(()));
        let c = r.schedule.makespan(inst);
        if best.as_ref().is_none_or(|(b, _)| c < *b) {
            best = Some((c, r.schedule));
        }
    }
    best.expect("at least one heuristic result")
}

/// Computes the optimal makespan and an optimal schedule, or `None` if the
/// node budget is exhausted first.
pub fn optimal(inst: &Instance, limits: SolveLimits) -> Option<ExactResult> {
    optimal_configured(inst, limits, BoundConfig::default())
}

/// As [`optimal`], with explicit pruning-bound configuration (E9 ablation).
pub fn optimal_configured(
    inst: &Instance,
    limits: SolveLimits,
    bounds: BoundConfig,
) -> Option<ExactResult> {
    match solve_configured(inst, limits, bounds, None) {
        SolveOutcome::Optimal(res) => Some(res),
        SolveOutcome::Exhausted { .. } | SolveOutcome::Cancelled { .. } => None,
    }
}

/// Cancellable exact solve with default pruning bounds: as [`optimal`], but
/// the search additionally polls `cancel` (when given) every
/// [`CHECK_MASK`]` + 1` nodes, so a wall-clock deadline bounds the runtime
/// of the solve itself rather than only being observed by the caller after
/// the fact.
pub fn solve(inst: &Instance, limits: SolveLimits, cancel: Option<&CancelToken>) -> SolveOutcome {
    solve_configured(inst, limits, BoundConfig::default(), cancel)
}

/// As [`solve`], with explicit pruning-bound configuration.
pub fn solve_configured(
    inst: &Instance,
    limits: SolveLimits,
    bounds: BoundConfig,
    cancel: Option<&CancelToken>,
) -> SolveOutcome {
    let incumbent = if inst.num_jobs() == 0 {
        (0, Schedule::new(vec![]))
    } else {
        initial_incumbent(inst)
    };
    solve_seeded(inst, limits, bounds, cancel, incumbent)
}

/// Warm-started exact solve: seeds the branch-and-bound incumbent from a
/// caller-provided schedule (e.g. the best heuristic schedule of a solver
/// portfolio, or a previous solve of a perturbed instance) instead of
/// recomputing the built-in heuristic incumbents. The tighter the seed, the
/// more of the tree the incumbent prunes — and when the seed already meets
/// the instance lower bound the search returns immediately with 0 nodes.
///
/// `incumbent` must be a valid schedule for `inst` (checked via
/// `debug_assert`; an invalid incumbent would make the "optimal" result
/// unsound).
pub fn solve_warm(
    inst: &Instance,
    limits: SolveLimits,
    cancel: Option<&CancelToken>,
    incumbent: &Schedule,
) -> SolveOutcome {
    solve_warm_configured(inst, limits, BoundConfig::default(), cancel, incumbent)
}

/// As [`solve_warm`], with explicit pruning-bound configuration.
pub fn solve_warm_configured(
    inst: &Instance,
    limits: SolveLimits,
    bounds: BoundConfig,
    cancel: Option<&CancelToken>,
    incumbent: &Schedule,
) -> SolveOutcome {
    debug_assert_eq!(validate(inst, incumbent), Ok(()));
    let ub = incumbent.makespan(inst);
    solve_seeded(inst, limits, bounds, cancel, (ub, incumbent.clone()))
}

fn solve_seeded(
    inst: &Instance,
    limits: SolveLimits,
    bounds: BoundConfig,
    cancel: Option<&CancelToken>,
    (ub, ub_schedule): (Time, Schedule),
) -> SolveOutcome {
    if inst.num_jobs() == 0 {
        return SolveOutcome::Optimal(ExactResult {
            makespan: 0,
            schedule: Schedule::new(vec![]),
            nodes: 0,
        });
    }
    let lb = lower_bound(inst);
    if ub == lb {
        return SolveOutcome::Optimal(ExactResult {
            makespan: ub,
            schedule: ub_schedule,
            nodes: 0,
        });
    }

    let m = inst.machines();
    // Seed the search state straight from the instance's flat storage: each
    // class is a contiguous (sizes, job ids) slice pair, so the per-class
    // pending lists are filled by one zip per span instead of a scatter
    // over the whole job table.
    let mut remaining: Vec<Vec<Pending>> = Vec::with_capacity(inst.num_classes());
    let mut partial: Vec<Option<Assignment>> = vec![None; inst.num_jobs()];
    for c in 0..inst.num_classes() {
        let mut pending: Vec<Pending> = inst
            .class_sizes(c)
            .iter()
            .copied()
            .zip(inst.class_jobs(c).iter().copied())
            .filter(|&(p, _)| p > 0)
            .collect();
        pending.sort_unstable_by(|a, b| b.cmp(a));
        remaining.push(pending);
    }
    for (j, job) in inst.jobs().iter().enumerate() {
        if job.size == 0 {
            // Zero-size jobs never conflict; pin them at (machine 0, time 0).
            partial[j] = Some(Assignment {
                machine: 0,
                start: 0,
            });
        }
    }
    let remaining_load: Time = inst.total_load();

    let root = Node {
        t: 0,
        running: Vec::new(),
        remaining,
        remaining_load,
        idle: (0..m).rev().collect(),
        partial,
        min_class: 0,
    };
    let sh = std::sync::Arc::new(Shared {
        inst: inst.clone(),
        m,
        bounds,
        best: AtomicU64::new(ub),
        best_schedule: Mutex::new(ub_schedule),
        nodes: AtomicU64::new(0),
        max_nodes: limits.max_nodes,
        overflowed: AtomicBool::new(false),
        cancel: cancel.cloned(),
        cancelled: AtomicBool::new(false),
    });

    // Root branching: each first job choice is its own subtree. With more
    // than one ambient thread the branches fan out as pool tasks sharing
    // the state and the root node via `Arc` clones; single-threaded — the
    // engine always pins report-path solves to one thread — the branches
    // run through ONE mutable `Search` with the same apply/undo discipline
    // as the inner loop, so the root fan-out allocates no per-branch node
    // clones. Both paths explore the same nodes in the same order at one
    // thread, so node counts are unchanged.
    let best_now = sh.best.load(Ordering::Relaxed);
    let mut cands = Vec::new();
    candidate_starts_into(&root, best_now, bounds, &mut cands);
    if rayon::current_num_threads() <= 1 {
        let mut search = Search::new(&sh, root);
        for (c, i) in cands {
            let undo = search.node.apply_start(c, i);
            search.dfs(0);
            search.node.undo_start(undo);
            if search.stop {
                break;
            }
        }
        search.finish();
    } else {
        let root = std::sync::Arc::new(root);
        cands.into_par_iter().for_each({
            let sh = std::sync::Arc::clone(&sh);
            let root = std::sync::Arc::clone(&root);
            move |(c, i)| {
                let mut search = Search::new(&sh, (*root).clone());
                search.node.apply_start(c, i);
                search.dfs(0);
                search.finish();
            }
        });
    }

    let nodes = sh.nodes.load(Ordering::Relaxed);
    if sh.cancelled.load(Ordering::Relaxed) {
        return SolveOutcome::Cancelled { nodes };
    }
    if sh.overflowed.load(Ordering::Relaxed) {
        return SolveOutcome::Exhausted { nodes };
    }
    let makespan = sh.best.load(Ordering::Relaxed);
    // Pool helpers may still hold their `Arc` clones for an instant after
    // the operation completes, so the schedule is cloned out of the lock
    // rather than unwrapped out of the `Arc` (the clone is one schedule).
    let schedule = sh.best_schedule.lock().clone();
    debug_assert_eq!(validate(&sh.inst, &schedule), Ok(()));
    debug_assert_eq!(schedule.makespan(inst), makespan);
    SolveOutcome::Optimal(ExactResult {
        makespan,
        schedule,
        nodes,
    })
}

/// Convenience wrapper with default limits; panics on budget exhaustion
/// (meant for small instances in tests and experiments).
pub fn optimal_makespan(inst: &Instance) -> Time {
    optimal(inst, SolveLimits::default())
        .expect("node budget exhausted — instance too large for exact solve")
        .makespan
}

/// Decision variant: is there a valid schedule with makespan at most `cap`?
/// Returns the witness schedule if so, `Ok(None)` if provably not, and
/// `Err(())` on node-budget exhaustion. Used by the PTAS cross-validation
/// and handy as a standalone oracle.
#[allow(clippy::result_unit_err)]
pub fn feasible_within(
    inst: &Instance,
    cap: Time,
    limits: SolveLimits,
) -> Result<Option<Schedule>, ()> {
    // Quick accepts: any heuristic witness within the cap.
    for r in [
        msrs_approx::three_halves(inst),
        msrs_approx::five_thirds(inst),
    ] {
        if r.schedule.makespan(inst) <= cap {
            return Ok(Some(r.schedule));
        }
    }
    match optimal(inst, limits) {
        Some(res) if res.makespan <= cap => Ok(Some(res.schedule)),
        Some(_) => Ok(None),
        None => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(m: usize, classes: &[Vec<Time>]) -> Time {
        let inst = Instance::from_classes(m, classes).unwrap();
        let r = optimal(&inst, SolveLimits::default()).expect("within budget");
        assert_eq!(validate(&inst, &r.schedule), Ok(()));
        assert_eq!(r.schedule.makespan(&inst), r.makespan);
        assert!(r.makespan >= lower_bound(&inst));
        r.makespan
    }

    #[test]
    fn single_machine_sums() {
        assert_eq!(opt(1, &[vec![3, 4], vec![5]]), 12);
    }

    #[test]
    fn partition_like() {
        // P2||Cmax on singleton classes: {3,3,2,2,2} → OPT 6.
        assert_eq!(opt(2, &[vec![3], vec![3], vec![2], vec![2], vec![2]]), 6);
    }

    #[test]
    fn class_serialization_forces_makespan() {
        // One class of three 4s on 3 machines must serialize: OPT 12.
        assert_eq!(opt(3, &[vec![4, 4, 4]]), 12);
    }

    #[test]
    fn interleaving_beats_merging() {
        // 3 classes of two unit jobs on 2 machines: OPT = 3 (interleave).
        assert_eq!(opt(2, &[vec![1, 1], vec![1, 1], vec![1, 1]]), 3);
    }

    #[test]
    fn deliberate_idling_needed() {
        // m=2, classes {3,3} and {3}: OPT 6; greedy that starts both 3s of
        // class 0 sequentially plus the other job still achieves 6 — check
        // exactness on a case where the area bound (5) is unreachable.
        assert_eq!(opt(2, &[vec![3, 3], vec![3]]), 6);
    }

    #[test]
    fn idling_strictly_helps() {
        // m=2: class A = {2,2}, class B = {2}, class C = {1,1}:
        // loads: A=4 serial, total 7 → area ⌈7/2⌉=4, class bound 4.
        // Feasible in 4: A on m0 [0,2),[2,4); B on m1 [0,2); C [2,3),[3,4)?
        // C jobs conflict: [2,3) and [3,4) on m1 sequential ✓ → OPT 4.
        assert_eq!(opt(2, &[vec![2, 2], vec![2], vec![1, 1]]), 4);
    }

    #[test]
    fn zero_sizes_ignored() {
        assert_eq!(opt(2, &[vec![0, 3], vec![3, 0]]), 3);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(2, vec![]).unwrap();
        assert_eq!(optimal(&inst, SolveLimits::default()).unwrap().makespan, 0);
    }

    #[test]
    fn feasibility_decision_agrees_with_optimum() {
        let inst =
            Instance::from_classes(2, &[vec![4], vec![4], vec![4], vec![3], vec![3]]).unwrap();
        let opt = optimal_makespan(&inst); // 10
        let yes = feasible_within(&inst, opt, SolveLimits::default()).unwrap();
        assert!(yes.is_some());
        let s = yes.unwrap();
        assert_eq!(validate(&inst, &s), Ok(()));
        assert!(s.makespan(&inst) <= opt);
        let no = feasible_within(&inst, opt - 1, SolveLimits::default()).unwrap();
        assert!(no.is_none());
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // Sizes 4,4,4,3,3 on two machines: lower bound 9 but OPT = 10, so
        // the incumbent cannot short-circuit and the search must run.
        let inst =
            Instance::from_classes(2, &[vec![4], vec![4], vec![4], vec![3], vec![3]]).unwrap();
        assert_eq!(opt(2, &[vec![4], vec![4], vec![4], vec![3], vec![3]]), 10);
        assert!(optimal(&inst, SolveLimits { max_nodes: 3 }).is_none());
    }

    /// Parity-gap partition (see [`msrs_gen::parity_gap_partition`]):
    /// OPT = T + 1 with a beyond-10⁸-node proof — minutes of work even for
    /// the allocation-free loop, and the all-distinct sizes give symmetry
    /// dominance no purchase.
    fn hard_distinct_instance() -> Instance {
        msrs_gen::parity_gap_partition(21)
    }

    #[test]
    fn cancellation_stops_a_long_search_quickly() {
        use std::time::{Duration, Instant};
        let inst = hard_distinct_instance();
        let token = CancelToken::after(Duration::from_millis(25));
        let started = Instant::now();
        let out = solve(
            &inst,
            SolveLimits {
                max_nodes: u64::MAX,
            },
            Some(&token),
        );
        let elapsed = started.elapsed();
        let SolveOutcome::Cancelled { nodes } = out else {
            panic!("expected cancellation, got {out:?} after {elapsed:?}");
        };
        assert!(nodes > 0);
        // Generous slack for loaded CI machines; the point is "milliseconds,
        // not the seconds the full proof needs".
        assert!(elapsed < Duration::from_secs(2), "overshoot: {elapsed:?}");
    }

    #[test]
    fn pre_cancelled_token_stops_at_the_first_check() {
        let inst =
            Instance::from_classes(2, &[vec![4], vec![4], vec![4], vec![3], vec![3]]).unwrap();
        let token = CancelToken::new();
        token.cancel();
        match solve(&inst, SolveLimits::default(), Some(&token)) {
            SolveOutcome::Cancelled { nodes } => assert!(nodes <= CHECK_MASK + 2),
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn no_token_behaves_like_optimal() {
        let inst =
            Instance::from_classes(2, &[vec![4], vec![4], vec![4], vec![3], vec![3]]).unwrap();
        match solve(&inst, SolveLimits::default(), None) {
            SolveOutcome::Optimal(res) => assert_eq!(res.makespan, 10),
            other => panic!("expected optimal, got {other:?}"),
        }
        match solve(&inst, SolveLimits { max_nodes: 3 }, None) {
            SolveOutcome::Exhausted { nodes } => assert!(nodes >= 3),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn matches_brute_force_intuition_on_conflict_example() {
        // m=2; class {5,5} + class {5} + class {5}: area 10, per-class 10…
        // OPT: class0 serial [0,10) on m0; others on m1 [0,5),[5,10) → 10.
        assert_eq!(opt(2, &[vec![5, 5], vec![5], vec![5]]), 10);
    }

    #[test]
    fn symmetry_dominance_preserves_the_optimum() {
        // Families with many identical classes: the symmetric and
        // non-symmetric searches must prove the same makespan, with the
        // symmetric one exploring no more nodes.
        let shapes: Vec<(usize, Vec<Vec<Time>>)> = vec![
            (2, vec![vec![4]; 7]),
            (2, vec![vec![3, 1]; 4]),
            (3, vec![vec![5], vec![5], vec![5], vec![2, 2], vec![2, 2]]),
            (2, vec![vec![4], vec![4], vec![4], vec![3], vec![3]]),
        ];
        for (m, classes) in shapes {
            let inst = Instance::from_classes(m, &classes).unwrap();
            let limits = SolveLimits {
                max_nodes: 50_000_000,
            };
            let with = optimal_configured(&inst, limits, BoundConfig::default()).expect("budget");
            let without = optimal_configured(
                &inst,
                limits,
                BoundConfig {
                    symmetry: false,
                    ..BoundConfig::default()
                },
            )
            .expect("budget");
            assert_eq!(with.makespan, without.makespan, "m={m}");
            assert_eq!(validate(&inst, &with.schedule), Ok(()));
            assert!(
                with.nodes <= without.nodes,
                "symmetry dominance explored more nodes ({} > {})",
                with.nodes,
                without.nodes
            );
        }
    }

    #[test]
    fn warm_start_with_optimal_incumbent_proves_in_zero_or_few_nodes() {
        let inst =
            Instance::from_classes(2, &[vec![4], vec![4], vec![4], vec![3], vec![3]]).unwrap();
        let cold = optimal(&inst, SolveLimits::default()).expect("budget");
        // Re-solve warm from the proven-optimal schedule: the incumbent
        // equals OPT, so the search only needs to certify (no improvement
        // possible ⇒ strictly fewer nodes than the cold run).
        let warm = match solve_warm(&inst, SolveLimits::default(), None, &cold.schedule) {
            SolveOutcome::Optimal(res) => res,
            other => panic!("expected optimal, got {other:?}"),
        };
        assert_eq!(warm.makespan, cold.makespan);
        assert_eq!(validate(&inst, &warm.schedule), Ok(()));
        assert!(
            warm.nodes <= cold.nodes,
            "warm start explored more nodes ({} > {})",
            warm.nodes,
            cold.nodes
        );
    }

    #[test]
    fn warm_start_from_a_heuristic_schedule_matches_cold_makespan() {
        for seed in 0..4u64 {
            let inst = msrs_gen::uniform(seed, 2, 7, 4, 1, 9);
            let heuristic = msrs_approx::three_halves(&inst).schedule;
            let warm = match solve_warm(&inst, SolveLimits::default(), None, &heuristic) {
                SolveOutcome::Optimal(res) => res,
                other => panic!("expected optimal, got {other:?}"),
            };
            let cold = optimal(&inst, SolveLimits::default()).expect("budget");
            assert_eq!(warm.makespan, cold.makespan, "seed {seed}");
        }
    }

    #[test]
    fn node_counter_is_exact_after_batched_accounting() {
        // The batched reservation must not leak: two identical 1-thread
        // runs report identical node counts, and a completed search's
        // count is the number of explored nodes (not a multiple of the
        // reservation chunk).
        let inst =
            Instance::from_classes(2, &[vec![4], vec![4], vec![4], vec![3], vec![3]]).unwrap();
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        let a = one
            .install(|| optimal(&inst, SolveLimits::default()))
            .expect("budget");
        let b = one
            .install(|| optimal(&inst, SolveLimits::default()))
            .expect("budget");
        assert_eq!(a.nodes, b.nodes);
        assert!(a.nodes > 0);
    }

    #[test]
    fn approximations_respect_exact_bounds_small_sweep() {
        // For a small family: OPT/T ≥ 1 and algorithm ratios vs OPT within
        // their guarantees.
        let shapes: Vec<(usize, Vec<Vec<Time>>)> = vec![
            (2, vec![vec![4, 3], vec![5], vec![2, 2]]),
            (2, vec![vec![6, 5], vec![4, 4], vec![4, 4]]),
            (3, vec![vec![7, 7], vec![6, 6], vec![5, 5], vec![1]]),
            (2, vec![vec![9, 8], vec![5, 5, 5], vec![2]]),
        ];
        for (m, classes) in shapes {
            let inst = Instance::from_classes(m, &classes).unwrap();
            let o = optimal_makespan(&inst);
            let r53 = msrs_approx::five_thirds(&inst);
            let r32 = msrs_approx::three_halves(&inst);
            assert!(r53.lower_bound <= o, "T53 must lower-bound OPT");
            assert!(r32.lower_bound <= o, "T32 must lower-bound OPT");
            assert!(3 * r53.makespan(&inst) <= 5 * o, "5/3 vs OPT violated");
            assert!(2 * r32.makespan(&inst) <= 3 * o, "3/2 vs OPT violated");
        }
    }
}
