//! Cross-validation of the branch-and-bound against an *independent*
//! brute-force reference (free start times, not event-anchored), plus
//! sandwich properties against the approximation algorithms on random
//! instances. This is the ground-truth audit for experiment E4.

use msrs_core::{bounds::lower_bound, validate, Instance, Time};
use msrs_exact::{optimal, SolveLimits};
use msrs_gen::SmallInstances;
use proptest::prelude::*;

/// Brute force: is there a valid schedule with makespan ≤ cap? Tries *every*
/// start time in `0..=cap - p` on every machine for every job — deliberately
/// unrelated to the event-anchored search it audits.
fn feasible_bruteforce(inst: &Instance, cap: Time) -> bool {
    fn rec(
        inst: &Instance,
        cap: Time,
        j: usize,
        placed: &mut Vec<(usize, Time)>, // (machine, start) per job
    ) -> bool {
        if j == inst.num_jobs() {
            return true;
        }
        let p = inst.size(j);
        if p == 0 {
            placed.push((0, 0));
            if rec(inst, cap, j + 1, placed) {
                return true;
            }
            placed.pop();
            return false;
        }
        if p > cap {
            return false;
        }
        for machine in 0..inst.machines() {
            for start in 0..=(cap - p) {
                let end = start + p;
                let ok = placed.iter().enumerate().all(|(k, &(qm, qs))| {
                    let (qp, qe) = (inst.size(k), qs + inst.size(k));
                    if qp == 0 {
                        return true;
                    }
                    let overlap = start < qe && qs < end;
                    let same_machine = qm == machine;
                    let same_class = inst.class_of(k) == inst.class_of(j);
                    !(overlap && (same_machine || same_class))
                });
                if ok {
                    placed.push((machine, start));
                    if rec(inst, cap, j + 1, placed) {
                        return true;
                    }
                    placed.pop();
                }
            }
        }
        false
    }
    rec(inst, cap, 0, &mut Vec::new())
}

fn bruteforce_opt(inst: &Instance) -> Time {
    let mut cap = lower_bound(inst);
    loop {
        if feasible_bruteforce(inst, cap) {
            return cap;
        }
        cap += 1;
    }
}

#[test]
fn exact_matches_bruteforce_on_exhaustive_small_instances() {
    // Every canonical instance with ≤ 4 jobs, sizes ≤ 3, ≤ 3 classes, on one,
    // two and three machines.
    let mut checked = 0usize;
    for m in 1..=3usize {
        for inst in SmallInstances::new(m, 4, 3, 3) {
            let r = optimal(&inst, SolveLimits::default()).expect("tiny instance");
            let bf = bruteforce_opt(&inst);
            assert_eq!(
                r.makespan, bf,
                "B&B {} ≠ brute force {bf} on {inst:?}",
                r.makespan
            );
            assert_eq!(validate(&inst, &r.schedule), Ok(()));
            checked += 1;
        }
    }
    assert!(checked > 300, "exhaustive sweep too small: {checked}");
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..=3,
        prop::collection::vec(prop::collection::vec(1u64..=6, 1..=3), 1..=4),
    )
        .prop_map(|(m, classes)| Instance::from_classes(m, &classes).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_is_sandwiched_and_guarantees_hold(inst in arb_instance()) {
        let r = optimal(&inst, SolveLimits::default()).expect("small instance");
        let lb = lower_bound(&inst);
        prop_assert!(r.makespan >= lb);
        prop_assert_eq!(validate(&inst, &r.schedule), Ok(()));

        let r53 = msrs_approx::five_thirds(&inst);
        let r32 = msrs_approx::three_halves(&inst);
        prop_assert!(r53.lower_bound <= r.makespan, "T(5/3) exceeds OPT");
        prop_assert!(r32.lower_bound <= r.makespan, "T(3/2) exceeds OPT");
        prop_assert!(r53.makespan(&inst) >= r.makespan);
        prop_assert!(r32.makespan(&inst) >= r.makespan);
        prop_assert!(3 * r53.makespan(&inst) <= 5 * r.makespan, "5/3 guarantee");
        prop_assert!(2 * r32.makespan(&inst) <= 3 * r.makespan, "3/2 guarantee");
    }

    #[test]
    fn exact_matches_bruteforce_random(inst in (
        1usize..=2,
        prop::collection::vec(prop::collection::vec(1u64..=4, 1..=2), 1..=3),
    ).prop_map(|(m, classes)| Instance::from_classes(m, &classes).unwrap())) {
        let r = optimal(&inst, SolveLimits::default()).expect("tiny instance");
        prop_assert_eq!(r.makespan, bruteforce_opt(&inst));
    }
}
