//! Satellite coverage: concurrent recording is lossless (totals exact from
//! 1, 2, and 8 threads, property-tested) and snapshots are deterministic
//! modulo timing fields.
//!
//! All tests run against *local* `Registry`/`Histogram` instances so they
//! cannot race recordings other test binaries make into the global
//! registry.

use msrs_telemetry::{Histogram, OutcomeStatus, Registry, Stage};
use proptest::prelude::*;
use std::sync::Arc;

/// Record `values` into `h` from `threads` OS threads (round-robin
/// partition), then join.
fn record_from_threads(h: &Arc<Histogram>, values: &[u64], threads: usize) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let h = Arc::clone(h);
            let mine: Vec<u64> = values.iter().copied().skip(t).step_by(threads).collect();
            std::thread::spawn(move || {
                for v in mine {
                    h.record(v);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread panicked");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Count, sum, max, and every bucket total are exact regardless of how
    /// many threads recorded concurrently.
    #[test]
    fn concurrent_histogram_totals_are_exact(
        values in prop::collection::vec(any::<u64>(), 1..200)
    ) {
        let expected_sum: u64 = values.iter().fold(0u64, |a, v| a.wrapping_add(*v));
        let expected_max = values.iter().copied().max().unwrap_or(0);
        let mut snapshots = Vec::new();
        for threads in [1usize, 2, 8] {
            let h = Arc::new(Histogram::new());
            record_from_threads(&h, &values, threads);
            prop_assert_eq!(h.count(), values.len() as u64, "threads {}", threads);
            prop_assert_eq!(h.sum(), expected_sum, "threads {}", threads);
            prop_assert_eq!(h.max(), expected_max, "threads {}", threads);
            snapshots.push(h.snapshot("t"));
        }
        // Same multiset of samples → identical snapshot (quantiles and
        // buckets included) no matter the thread interleaving.
        prop_assert_eq!(&snapshots[0], &snapshots[1]);
        prop_assert_eq!(&snapshots[0], &snapshots[2]);
    }

    /// Concurrent counter increments across a whole registry are lossless.
    #[test]
    fn concurrent_counter_totals_are_exact(per_thread in 1u64..500) {
        for threads in [1usize, 2, 8] {
            let r = Arc::new(Registry::new());
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let r = Arc::clone(&r);
                    let n = per_thread;
                    std::thread::spawn(move || {
                        for _ in 0..n {
                            r.requests_total.inc();
                            r.cache_entries.add(1);
                            r.outcomes.record(
                                1, 2, OutcomeStatus::Completed, true, 3, 10,
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("recorder thread panicked");
            }
            let want = per_thread * threads as u64;
            prop_assert_eq!(r.requests_total.get(), want);
            prop_assert_eq!(r.cache_entries.get(), want as i64);
            prop_assert_eq!(r.outcomes.runs(1, 2), want);
        }
    }
}

/// Two registries fed identical content render byte-identical JSON and
/// Prometheus documents: every field a snapshot carries is a function of
/// what was recorded, never of when.
#[test]
fn snapshots_are_deterministic_modulo_timing() {
    let build = || {
        let r = Registry::new();
        r.requests_total.add(7);
        r.cache_hits_total.add(3);
        r.cache_entries.set(4);
        r.pool_workers_alive.set(2);
        for v in [0u64, 1, 900, 900, 16_384, u64::MAX] {
            r.stage(Stage::Decode).record(v);
            r.stage(Stage::MemberRace).record(v / 2);
        }
        r.outcomes
            .record(0, 0, OutcomeStatus::Completed, true, 11, 120);
        r.outcomes
            .record(0, 0, OutcomeStatus::Exhausted, false, 400, 9_000);
        r.outcomes
            .record(3, 6, OutcomeStatus::TimedOut, false, 0, 50_000);
        r.snapshot()
    };
    let (a, b) = (build(), build());
    assert_eq!(a, b);
    assert_eq!(a.to_json_string(), b.to_json_string());
    assert_eq!(a.to_prometheus(), b.to_prometheus());
    // And the rendering is stable across calls on one snapshot.
    assert_eq!(a.to_json_string(), a.to_json_string());
}
