//! # msrs-telemetry — process-global, allocation-free metrics for MSRS
//!
//! The observability spine of the workspace: one const-initialized, static
//! [`Registry`] of atomic counters, gauges, log2-bucketed latency
//! [`Histogram`]s, per-hop data-plane [`Stage`] spans, and a
//! per-(profile, member) solver [`OutcomeTable`].
//!
//! ## Design contract
//!
//! * **Recording never allocates.** Every record path is a handful of relaxed
//!   atomic operations (plus `Instant::now()` for spans), so the serving data
//!   plane stays on the workspace's zero-allocation CI gate with telemetry
//!   enabled.
//! * **Snapshotting allocates.** [`snapshot()`] walks the registry into an
//!   owned [`Snapshot`] that can be rendered as JSON or Prometheus text
//!   exposition format. Take snapshots at batch boundaries, not per request.
//! * **std-only, `forbid(unsafe_code)`, no dependencies.** The crate sits at
//!   the bottom of the workspace graph so `msrs-core`, the vendored `rayon`
//!   pool, and `msrs-engine` can all record into the same registry.
//!
//! All cross-thread consistency is *per metric*: counters are exact (each
//! recorded event is counted exactly once), but a snapshot taken while other
//! threads record concurrently may observe metric A before and metric B after
//! a given event. Quiesce recording first when exact cross-metric agreement
//! matters (the CLI snapshots after the batch completes).
//!
//! ## Histograms without floats
//!
//! [`Histogram`] pre-allocates 65 buckets: bucket 0 counts zero-valued
//! samples and bucket `i ≥ 1` counts samples in `[2^(i-1), 2^i - 1]`.
//! Quantiles are derived in pure integer arithmetic — the reported
//! p50/p90/p99 is the *upper bound* of the first bucket whose cumulative
//! count reaches the rank, so quantiles are conservative (never
//! under-reported) and cost nothing to maintain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of histogram buckets: one zero bucket plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maximum number of distinct profile rows an [`OutcomeTable`] can hold.
pub const MAX_OUTCOME_PROFILES: usize = 8;

/// Maximum number of distinct portfolio-member columns an [`OutcomeTable`]
/// can hold.
pub const MAX_OUTCOME_MEMBERS: usize = 8;

/// A monotonically increasing event counter.
///
/// Recording is a single relaxed `fetch_add`; reads are racy-but-exact in
/// the sense that every `add` is eventually visible exactly once.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero (const, so counters can live in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (cache residency, live workers, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero (const, so gauges can live in statics).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Increase the gauge by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease the gauge by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram with exact count/sum/max side channels.
///
/// See the crate docs for the bucket layout; quantiles come from
/// [`HistogramSnapshot`], computed over a captured bucket array so one
/// snapshot is internally consistent.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram (const, so histograms can live in statics).
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a sample: 0 for 0, else `bit_length(value)`
    /// (so bucket `i` covers `[2^(i-1), 2^i - 1]`, bucket 64 covers
    /// `[2^63, u64::MAX]`).
    #[inline]
    pub const fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive `(low, high)` sample range of bucket `index`.
    pub const fn bucket_bounds(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else if index >= 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (index - 1), (1u64 << index) - 1)
        }
    }

    /// Record one sample. Allocation-free: four relaxed atomic RMW ops.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow; µs/ns totals fit comfortably).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Capture an owned, internally consistent snapshot (allocates).
    pub fn snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot::from_buckets(name, buckets, self.sum(), self.max())
    }
}

/// Owned view of a [`Histogram`] with integer quantiles derived from the
/// captured buckets (count is the bucket sum, so quantiles, count, and
/// buckets always agree within one snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name (unit is part of the name, e.g. `…_nanos`).
    pub name: &'static str,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Conservative median (upper bound of the p50 bucket).
    pub p50: u64,
    /// Conservative 90th percentile.
    pub p90: u64,
    /// Conservative 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(low, high, count)`, in increasing order.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    fn from_buckets(name: &'static str, raw: [u64; HISTOGRAM_BUCKETS], sum: u64, max: u64) -> Self {
        let count: u64 = raw.iter().sum();
        let quantile = |num: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Smallest rank that covers `num`% of the samples, then the
            // upper bound of the first bucket whose cumulative count
            // reaches that rank. Pure integer arithmetic.
            let target = (u128::from(count) * u128::from(num)).div_ceil(100);
            let mut cumulative = 0u128;
            for (i, &n) in raw.iter().enumerate() {
                cumulative += u128::from(n);
                if cumulative >= target {
                    return Histogram::bucket_bounds(i).1;
                }
            }
            Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
        };
        let buckets = raw
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = Histogram::bucket_bounds(i);
                (lo, hi, n)
            })
            .collect();
        HistogramSnapshot {
            name,
            count,
            sum,
            max,
            p50: quantile(50),
            p90: quantile(90),
            p99: quantile(99),
            buckets,
        }
    }
}

/// One hop of the serving data plane, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// JSONL line → typed instance.
    Decode,
    /// Instance → canonical form + fingerprint.
    Canonicalize,
    /// Canonical-form cache probe.
    CacheLookup,
    /// Instance classification + portfolio planning.
    Plan,
    /// Running the planned portfolio members.
    MemberRace,
    /// Report → output bytes.
    Serialize,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Decode,
        Stage::Canonicalize,
        Stage::CacheLookup,
        Stage::Plan,
        Stage::MemberRace,
        Stage::Serialize,
    ];

    /// Registry/Prometheus metric name for this stage's histogram.
    pub const fn metric_name(self) -> &'static str {
        match self {
            Stage::Decode => "msrs_stage_decode_nanos",
            Stage::Canonicalize => "msrs_stage_canonicalize_nanos",
            Stage::CacheLookup => "msrs_stage_cache_lookup_nanos",
            Stage::Plan => "msrs_stage_plan_nanos",
            Stage::MemberRace => "msrs_stage_member_race_nanos",
            Stage::Serialize => "msrs_stage_serialize_nanos",
        }
    }

    /// Short human label (`decode`, `plan`, …).
    pub const fn label(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Canonicalize => "canonicalize",
            Stage::CacheLookup => "cache_lookup",
            Stage::Plan => "plan",
            Stage::MemberRace => "member_race",
            Stage::Serialize => "serialize",
        }
    }

    /// Start a drop-recording span against the global registry.
    ///
    /// The guard records elapsed wall time in nanoseconds into this stage's
    /// histogram when dropped; creating and dropping it never allocates.
    #[inline]
    pub fn span(self) -> StageSpan {
        StageSpan {
            stage: self,
            start: Instant::now(),
        }
    }

    /// Record an already-measured duration (in nanoseconds) for this stage
    /// into the global registry.
    #[inline]
    pub fn record_nanos(self, nanos: u64) {
        registry().stage(self).record(nanos);
    }
}

/// Drop guard returned by [`Stage::span`]: times a scope and records it.
#[derive(Debug)]
pub struct StageSpan {
    stage: Stage,
    start: Instant,
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage.record_nanos(nanos);
    }
}

/// Terminal status of one portfolio-member run, as seen by the outcome
/// table (mirrors the engine's `RunStatus` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeStatus {
    /// Ran to completion and produced a certified schedule.
    Completed,
    /// Hit its deadline before completing.
    TimedOut,
    /// Exhausted its node/iteration budget.
    Exhausted,
    /// Produced an invalid schedule (rejected by validation).
    Invalid,
}

/// One cell of the outcome table: cumulative stats for a
/// (profile, member) pair.
#[derive(Debug)]
pub struct OutcomeCell {
    runs: Counter,
    wins: Counter,
    completed: Counter,
    timed_out: Counter,
    exhausted: Counter,
    invalid: Counter,
    nodes_total: Counter,
    wall_micros: Histogram,
}

impl OutcomeCell {
    const fn new() -> Self {
        OutcomeCell {
            runs: Counter::new(),
            wins: Counter::new(),
            completed: Counter::new(),
            timed_out: Counter::new(),
            exhausted: Counter::new(),
            invalid: Counter::new(),
            nodes_total: Counter::new(),
            wall_micros: Histogram::new(),
        }
    }
}

/// Preallocated per-(profile, member) feedback store: every fresh member
/// run recorded by the engine lands in exactly one cell. This is the
/// feedback signal the adaptive-portfolio roadmap item consumes.
///
/// Axis labels are attached once via [`set_outcome_labels`]; unlabeled
/// indices render as `p<i>` / `m<i>`.
#[derive(Debug)]
pub struct OutcomeTable {
    cells: [[OutcomeCell; MAX_OUTCOME_MEMBERS]; MAX_OUTCOME_PROFILES],
}

impl Default for OutcomeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl OutcomeTable {
    /// A fresh, empty table (const, so tables can live in statics).
    pub const fn new() -> Self {
        OutcomeTable {
            cells: [const { [const { OutcomeCell::new() }; MAX_OUTCOME_MEMBERS] };
                MAX_OUTCOME_PROFILES],
        }
    }

    /// Record one member run. Out-of-range indices clamp to the last
    /// row/column rather than panicking (recording must never fail).
    #[inline]
    pub fn record(
        &self,
        profile: usize,
        member: usize,
        status: OutcomeStatus,
        won: bool,
        nodes: u64,
        wall_micros: u64,
    ) {
        let cell =
            &self.cells[profile.min(MAX_OUTCOME_PROFILES - 1)][member.min(MAX_OUTCOME_MEMBERS - 1)];
        cell.runs.inc();
        if won {
            cell.wins.inc();
        }
        match status {
            OutcomeStatus::Completed => cell.completed.inc(),
            OutcomeStatus::TimedOut => cell.timed_out.inc(),
            OutcomeStatus::Exhausted => cell.exhausted.inc(),
            OutcomeStatus::Invalid => cell.invalid.inc(),
        }
        cell.nodes_total.add(nodes);
        cell.wall_micros.record(wall_micros);
    }

    /// Total runs recorded in cell `(profile, member)`.
    pub fn runs(&self, profile: usize, member: usize) -> u64 {
        self.cells[profile.min(MAX_OUTCOME_PROFILES - 1)][member.min(MAX_OUTCOME_MEMBERS - 1)]
            .runs
            .get()
    }

    fn snapshot(&self) -> Vec<OutcomeSnapshot> {
        let (profiles, members) = outcome_labels();
        let mut rows = Vec::new();
        for (p, row) in self.cells.iter().enumerate() {
            for (m, cell) in row.iter().enumerate() {
                if cell.runs.get() == 0 {
                    continue;
                }
                rows.push(OutcomeSnapshot {
                    profile: label_or_default(profiles, p, DEFAULT_PROFILE_LABELS),
                    member: label_or_default(members, m, DEFAULT_MEMBER_LABELS),
                    runs: cell.runs.get(),
                    wins: cell.wins.get(),
                    completed: cell.completed.get(),
                    timed_out: cell.timed_out.get(),
                    exhausted: cell.exhausted.get(),
                    invalid: cell.invalid.get(),
                    nodes_total: cell.nodes_total.get(),
                    wall: cell.wall_micros.snapshot("wall_micros"),
                });
            }
        }
        rows
    }
}

const DEFAULT_PROFILE_LABELS: [&str; MAX_OUTCOME_PROFILES] =
    ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"];
const DEFAULT_MEMBER_LABELS: [&str; MAX_OUTCOME_MEMBERS] =
    ["m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"];

fn label_or_default(
    labels: Option<&'static [&'static str]>,
    index: usize,
    defaults: [&'static str; 8],
) -> &'static str {
    labels
        .and_then(|l| l.get(index).copied())
        .unwrap_or(defaults[index.min(7)])
}

static OUTCOME_LABELS: OnceLock<(&'static [&'static str], &'static [&'static str])> =
    OnceLock::new();

/// Attach human-readable axis labels to the outcome table (first caller
/// wins; later calls are ignored). The engine calls this with its size-tier
/// and portfolio-member names at construction.
pub fn set_outcome_labels(profiles: &'static [&'static str], members: &'static [&'static str]) {
    let _ = OUTCOME_LABELS.set((profiles, members));
}

fn outcome_labels() -> (
    Option<&'static [&'static str]>,
    Option<&'static [&'static str]>,
) {
    match OUTCOME_LABELS.get() {
        Some((p, m)) => (Some(p), Some(m)),
        None => (None, None),
    }
}

/// Maximum pool-worker chunk slots a snapshot will carry.
pub const MAX_POOL_WORKERS: usize = 256;

static POOL_WORKER_CHUNKS: OnceLock<fn() -> Vec<u64>> = OnceLock::new();

/// Register the source for per-worker chunk counts (first caller wins).
///
/// The vendored pool owns per-worker attribution (workers are spawned and
/// reclaimed dynamically, so the registry cannot preallocate them); it
/// registers a plain function pointer here and [`snapshot()`] pulls the
/// vector through it. Registration stores a `fn` pointer — no allocation.
pub fn set_pool_worker_chunks_source(source: fn() -> Vec<u64>) {
    let _ = POOL_WORKER_CHUNKS.set(source);
}

/// The process-global metrics registry.
///
/// All fields are public atomic handles: recording sites hold
/// `&'static Counter` / `&'static Histogram` references and pay only the
/// atomic op. A non-static `Registry::new()` works too (used by tests that
/// need isolation from the global instance).
#[derive(Debug, Default)]
pub struct Registry {
    /// Reports finalized for a caller (typed API) plus fast-path lines
    /// served straight from cache by the JSONL server.
    pub requests_total: Counter,
    /// JSONL-server lines answered without a fresh solve (cache hit or
    /// intra-shard duplicate).
    pub serve_fast_path_total: Counter,
    /// Deadline latches: `CancelToken`s whose wall-clock deadline fired
    /// (counted once per token, not per poll).
    pub deadline_hits_total: Counter,
    /// Canonical-form cache hits (including intra-batch dedup hits).
    pub cache_hits_total: Counter,
    /// Canonical-form cache misses.
    pub cache_misses_total: Counter,
    /// LRU evictions.
    pub cache_evictions_total: Counter,
    /// Fresh entries inserted into the cache.
    pub cache_inserts_total: Counter,
    /// Worker threads spawned by the persistent pool.
    pub pool_spawns_total: Counter,
    /// Idle worker threads reclaimed by the pool.
    pub pool_reclaims_total: Counter,
    /// Times a pool worker parked on its condvar waiting for work.
    pub pool_parks_total: Counter,
    /// Tasks stolen back by their submitter (join caller-takes, scope
    /// waiter-drain) instead of running on a pool worker.
    pub pool_stealbacks_total: Counter,
    /// Parallel operations (`join`/`scope`/chunked loops) executed.
    pub pool_ops_total: Counter,
    /// Helper jobs submitted to workers.
    pub pool_helper_jobs_total: Counter,
    /// Work chunks executed inline by the submitting caller.
    pub pool_caller_chunks_total: Counter,
    /// TCP sessions accepted by `msrs serve` (counted at accept).
    pub serve_sessions_total: Counter,
    /// Requests shed by serve admission control (`overloaded` lines
    /// emitted because the in-flight bound was reached).
    pub serve_sheds_total: Counter,
    /// Served requests whose report carried at least one `timed_out`
    /// solver run — the per-request deadline fired while serving.
    pub serve_deadline_hits_total: Counter,
    /// Serve sessions closed because the peer went idle past the
    /// configured `--idle-timeout-ms`.
    pub serve_idle_closes_total: Counter,
    /// Serve sessions closed after reaching `--max-requests-per-session`.
    pub serve_limit_closes_total: Counter,
    /// Serve sessions whose peer disconnected mid-write (`EPIPE` /
    /// connection reset), ended cleanly instead of erroring.
    pub serve_disconnects_total: Counter,
    /// Worker child processes spawned by `msrs dispatch` (including
    /// replacements after crashes).
    pub dispatch_workers_spawned_total: Counter,
    /// Worker failures observed by the dispatch coordinator: process
    /// exit/EOF mid-shard, garbled output, missed heartbeats, or a
    /// per-shard deadline overrun.
    pub dispatch_worker_crashes_total: Counter,
    /// Shard attempts re-queued after a worker failure (each retry after
    /// the first attempt counts once).
    pub dispatch_retries_total: Counter,
    /// Shards quarantined after exhausting their retry budget; the run
    /// degrades to a structured per-shard error record instead of
    /// aborting.
    pub dispatch_quarantines_total: Counter,
    /// Shards whose reports were merged and journaled by the dispatch
    /// coordinator (includes quarantined shards).
    pub dispatch_shards_total: Counter,
    /// Shards skipped on startup because a checkpoint journal already
    /// recorded them as complete.
    pub dispatch_shards_resumed_total: Counter,
    /// Remote TCP workers admitted by the dispatch coordinator after a
    /// successful handshake (reconnects count again).
    pub dispatch_remote_workers_total: Counter,
    /// Remote worker handshakes refused (protocol version or engine
    /// configuration fingerprint mismatch).
    pub dispatch_handshake_rejects_total: Counter,
    /// Remote workers that dialed back in after losing their connection
    /// (the worker reports its reconnect in the handshake).
    pub dispatch_reconnects_total: Counter,
    /// Shard leases revoked because the owning attempt went silent past
    /// the heartbeat timeout or overran its per-shard deadline.
    pub dispatch_lease_expiries_total: Counter,
    /// Speculative duplicate shard attempts launched against stragglers.
    pub dispatch_hedges_total: Counter,
    /// Hedged shards where the speculative attempt committed first.
    pub dispatch_hedge_wins_total: Counter,
    /// Completed shard attempts discarded because their twin committed
    /// first (the losing half of a hedge, either direction).
    pub dispatch_hedge_wasted_total: Counter,
    /// `#done`/`#error` lines dropped because their lease had lapsed or
    /// their shard was already committed (zombie workers, duplicate
    /// `#done`s) — never merged into the output.
    pub dispatch_stale_drops_total: Counter,
    /// Cache records loaded from a durable cache store on warm restart.
    pub cache_store_loads_total: Counter,
    /// Cache store records rejected on load (checksum mismatch, torn or
    /// unparsable line) — the damage that triggered a segment quarantine.
    pub cache_store_load_errors_total: Counter,
    /// Cache store segments quarantined on load because a record inside
    /// them failed verification; loading continued past them.
    pub cache_store_segments_quarantined_total: Counter,
    /// Durable batches the cache store's background flusher fsync'd to
    /// disk (each flush covers one or more queued records).
    pub cache_store_flushes_total: Counter,
    /// Cache entries dropped instead of persisted because the flusher's
    /// bounded queue was full (the fast path never blocks on disk).
    pub cache_store_queue_drops_total: Counter,
    /// `#cacheq` probes the dispatch coordinator answered from its
    /// fleet-shared cache with a `#cachehit` payload.
    pub dispatch_fleet_cache_hits_total: Counter,
    /// `#cachefill` entries the coordinator discarded because the sending
    /// worker's lease had lapsed (zombie) or it held no assignment.
    pub dispatch_stale_fills_dropped_total: Counter,
    /// Live entries resident in the canonical-form cache.
    pub cache_entries: Gauge,
    /// Configured capacity of the most recently constructed cache.
    pub cache_capacity: Gauge,
    /// Pool worker threads currently alive.
    pub pool_workers_alive: Gauge,
    /// Serve sessions currently open (accepted, not yet closed).
    pub serve_sessions_open: Gauge,
    /// Requests currently being served (admitted, response not yet
    /// written) across all serve sessions.
    pub serve_inflight: Gauge,
    /// Per-hop data-plane latency histograms, indexed by [`Stage`].
    pub stages: [Histogram; 6],
    /// The per-(profile, member) solver feedback store.
    pub outcomes: OutcomeTable,
}

impl Registry {
    /// A fresh, empty registry (const, so the global lives in a static).
    pub const fn new() -> Self {
        Registry {
            requests_total: Counter::new(),
            serve_fast_path_total: Counter::new(),
            deadline_hits_total: Counter::new(),
            cache_hits_total: Counter::new(),
            cache_misses_total: Counter::new(),
            cache_evictions_total: Counter::new(),
            cache_inserts_total: Counter::new(),
            pool_spawns_total: Counter::new(),
            pool_reclaims_total: Counter::new(),
            pool_parks_total: Counter::new(),
            pool_stealbacks_total: Counter::new(),
            pool_ops_total: Counter::new(),
            pool_helper_jobs_total: Counter::new(),
            pool_caller_chunks_total: Counter::new(),
            serve_sessions_total: Counter::new(),
            serve_sheds_total: Counter::new(),
            serve_deadline_hits_total: Counter::new(),
            serve_idle_closes_total: Counter::new(),
            serve_limit_closes_total: Counter::new(),
            serve_disconnects_total: Counter::new(),
            dispatch_workers_spawned_total: Counter::new(),
            dispatch_worker_crashes_total: Counter::new(),
            dispatch_retries_total: Counter::new(),
            dispatch_quarantines_total: Counter::new(),
            dispatch_shards_total: Counter::new(),
            dispatch_shards_resumed_total: Counter::new(),
            dispatch_remote_workers_total: Counter::new(),
            dispatch_handshake_rejects_total: Counter::new(),
            dispatch_reconnects_total: Counter::new(),
            dispatch_lease_expiries_total: Counter::new(),
            dispatch_hedges_total: Counter::new(),
            dispatch_hedge_wins_total: Counter::new(),
            dispatch_hedge_wasted_total: Counter::new(),
            dispatch_stale_drops_total: Counter::new(),
            cache_store_loads_total: Counter::new(),
            cache_store_load_errors_total: Counter::new(),
            cache_store_segments_quarantined_total: Counter::new(),
            cache_store_flushes_total: Counter::new(),
            cache_store_queue_drops_total: Counter::new(),
            dispatch_fleet_cache_hits_total: Counter::new(),
            dispatch_stale_fills_dropped_total: Counter::new(),
            cache_entries: Gauge::new(),
            cache_capacity: Gauge::new(),
            pool_workers_alive: Gauge::new(),
            serve_sessions_open: Gauge::new(),
            serve_inflight: Gauge::new(),
            stages: [const { Histogram::new() }; 6],
            outcomes: OutcomeTable::new(),
        }
    }

    /// The histogram backing `stage`.
    #[inline]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    fn counters(&self) -> [(&'static str, &Counter); 41] {
        [
            ("msrs_requests_total", &self.requests_total),
            ("msrs_serve_fast_path_total", &self.serve_fast_path_total),
            ("msrs_deadline_hits_total", &self.deadline_hits_total),
            ("msrs_cache_hits_total", &self.cache_hits_total),
            ("msrs_cache_misses_total", &self.cache_misses_total),
            ("msrs_cache_evictions_total", &self.cache_evictions_total),
            ("msrs_cache_inserts_total", &self.cache_inserts_total),
            ("msrs_pool_spawns_total", &self.pool_spawns_total),
            ("msrs_pool_reclaims_total", &self.pool_reclaims_total),
            ("msrs_pool_parks_total", &self.pool_parks_total),
            ("msrs_pool_stealbacks_total", &self.pool_stealbacks_total),
            ("msrs_pool_ops_total", &self.pool_ops_total),
            ("msrs_pool_helper_jobs_total", &self.pool_helper_jobs_total),
            (
                "msrs_pool_caller_chunks_total",
                &self.pool_caller_chunks_total,
            ),
            ("msrs_serve_sessions_total", &self.serve_sessions_total),
            ("msrs_serve_sheds_total", &self.serve_sheds_total),
            (
                "msrs_serve_deadline_hits_total",
                &self.serve_deadline_hits_total,
            ),
            (
                "msrs_serve_idle_closes_total",
                &self.serve_idle_closes_total,
            ),
            (
                "msrs_serve_limit_closes_total",
                &self.serve_limit_closes_total,
            ),
            (
                "msrs_serve_disconnects_total",
                &self.serve_disconnects_total,
            ),
            (
                "msrs_dispatch_workers_spawned_total",
                &self.dispatch_workers_spawned_total,
            ),
            (
                "msrs_dispatch_worker_crashes_total",
                &self.dispatch_worker_crashes_total,
            ),
            ("msrs_dispatch_retries_total", &self.dispatch_retries_total),
            (
                "msrs_dispatch_quarantines_total",
                &self.dispatch_quarantines_total,
            ),
            ("msrs_dispatch_shards_total", &self.dispatch_shards_total),
            (
                "msrs_dispatch_shards_resumed_total",
                &self.dispatch_shards_resumed_total,
            ),
            (
                "msrs_dispatch_remote_workers_total",
                &self.dispatch_remote_workers_total,
            ),
            (
                "msrs_dispatch_handshake_rejects_total",
                &self.dispatch_handshake_rejects_total,
            ),
            (
                "msrs_dispatch_reconnects_total",
                &self.dispatch_reconnects_total,
            ),
            (
                "msrs_dispatch_lease_expiries_total",
                &self.dispatch_lease_expiries_total,
            ),
            ("msrs_dispatch_hedges_total", &self.dispatch_hedges_total),
            (
                "msrs_dispatch_hedge_wins_total",
                &self.dispatch_hedge_wins_total,
            ),
            (
                "msrs_dispatch_hedge_wasted_total",
                &self.dispatch_hedge_wasted_total,
            ),
            (
                "msrs_dispatch_stale_drops_total",
                &self.dispatch_stale_drops_total,
            ),
            (
                "msrs_cache_store_loads_total",
                &self.cache_store_loads_total,
            ),
            (
                "msrs_cache_store_load_errors_total",
                &self.cache_store_load_errors_total,
            ),
            (
                "msrs_cache_store_segments_quarantined_total",
                &self.cache_store_segments_quarantined_total,
            ),
            (
                "msrs_cache_store_flushes_total",
                &self.cache_store_flushes_total,
            ),
            (
                "msrs_cache_store_queue_drops_total",
                &self.cache_store_queue_drops_total,
            ),
            (
                "msrs_dispatch_fleet_cache_hits_total",
                &self.dispatch_fleet_cache_hits_total,
            ),
            (
                "msrs_dispatch_stale_fills_dropped_total",
                &self.dispatch_stale_fills_dropped_total,
            ),
        ]
    }

    fn gauges(&self) -> [(&'static str, &Gauge); 5] {
        [
            ("msrs_cache_entries", &self.cache_entries),
            ("msrs_cache_capacity", &self.cache_capacity),
            ("msrs_pool_workers_alive", &self.pool_workers_alive),
            ("msrs_serve_sessions_open", &self.serve_sessions_open),
            ("msrs_serve_inflight", &self.serve_inflight),
        ]
    }

    /// Capture an owned snapshot of this registry (allocates).
    ///
    /// Ordering is deterministic (catalog order); all-zero outcome cells
    /// are skipped. The pool's per-worker chunk vector is pulled through
    /// the source registered by [`set_pool_worker_chunks_source`] — only
    /// snapshots of the *global* registry carry it.
    pub fn snapshot(&self) -> Snapshot {
        let pool_worker_chunks = if std::ptr::eq(self, registry()) {
            POOL_WORKER_CHUNKS.get().map(|f| f()).unwrap_or_default()
        } else {
            Vec::new()
        };
        Snapshot {
            counters: self
                .counters()
                .iter()
                .map(|(name, c)| (*name, c.get()))
                .collect(),
            gauges: self
                .gauges()
                .iter()
                .map(|(name, g)| (*name, g.get()))
                .collect(),
            stages: Stage::ALL
                .iter()
                .map(|s| self.stage(*s).snapshot(s.metric_name()))
                .collect(),
            outcomes: self.outcomes.snapshot(),
            pool_worker_chunks,
        }
    }
}

static REGISTRY: Registry = Registry::new();

/// The process-global registry every MSRS crate records into.
#[inline]
pub fn registry() -> &'static Registry {
    &REGISTRY
}

/// Snapshot the process-global registry (allocates; see
/// [`Registry::snapshot`]).
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Cumulative stats for one (profile, member) outcome cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeSnapshot {
    /// Instance-profile row label (e.g. `tiny`).
    pub profile: &'static str,
    /// Portfolio-member column label (e.g. `exact`).
    pub member: &'static str,
    /// Member runs recorded.
    pub runs: u64,
    /// Runs whose schedule won the race.
    pub wins: u64,
    /// Runs that completed.
    pub completed: u64,
    /// Runs cut off by a deadline.
    pub timed_out: u64,
    /// Runs that exhausted their node/iteration budget.
    pub exhausted: u64,
    /// Runs rejected by validation.
    pub invalid: u64,
    /// Total search nodes / iterations spent.
    pub nodes_total: u64,
    /// Wall-time distribution in microseconds.
    pub wall: HistogramSnapshot,
}

/// An owned, renderable snapshot of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters in catalog order.
    pub counters: Vec<(&'static str, u64)>,
    /// All gauges in catalog order.
    pub gauges: Vec<(&'static str, i64)>,
    /// Stage histograms in pipeline order.
    pub stages: Vec<HistogramSnapshot>,
    /// Non-empty outcome cells in (profile, member) order.
    pub outcomes: Vec<OutcomeSnapshot>,
    /// Cumulative chunk counts per pool worker, in spawn order (empty if
    /// no pool source is registered or this snapshot is of a local
    /// registry).
    pub pool_worker_chunks: Vec<u64>,
}

impl Snapshot {
    /// Value of a counter by catalog name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of a gauge by catalog name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Stage histogram by stage (always present).
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// Render as a single-line JSON document.
    ///
    /// Deterministic: identical registry contents yield identical strings.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"telemetry\":\"msrs\",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"stages\":[");
        for (i, h) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_histogram_json(&mut out, h);
        }
        out.push_str("],\"outcomes\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_json_key(&mut out, "profile");
            out.push('"');
            out.push_str(o.profile);
            out.push_str("\",");
            push_json_key(&mut out, "member");
            out.push('"');
            out.push_str(o.member);
            out.push_str("\",");
            for (key, v) in [
                ("runs", o.runs),
                ("wins", o.wins),
                ("completed", o.completed),
                ("timed_out", o.timed_out),
                ("exhausted", o.exhausted),
                ("invalid", o.invalid),
                ("nodes_total", o.nodes_total),
            ] {
                push_json_key(&mut out, key);
                out.push_str(&v.to_string());
                out.push(',');
            }
            push_json_key(&mut out, "wall");
            push_histogram_json(&mut out, &o.wall);
            out.push('}');
        }
        out.push_str("],\"pool_worker_chunks\":[");
        for (i, v) in self.pool_worker_chunks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push_str("]}");
        out
    }

    /// Render in Prometheus text exposition format.
    ///
    /// Counters and gauges keep their catalog names; stage histograms emit
    /// cumulative `_bucket{le="…"}` series plus `_sum`/`_count`; the
    /// outcome table emits labeled counters
    /// (`msrs_outcome_runs_total{profile="…",member="…"}` et al.) and a
    /// `msrs_outcome_wall_micros` summary with conservative quantiles.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        for (name, v) in &self.counters {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" counter\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" gauge\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for h in &self.stages {
            out.push_str("# TYPE ");
            out.push_str(h.name);
            out.push_str(" histogram\n");
            let mut cumulative = 0u64;
            for (_, hi, n) in &h.buckets {
                cumulative += n;
                out.push_str(h.name);
                out.push_str("_bucket{le=\"");
                out.push_str(&hi.to_string());
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(h.name);
            out.push_str("_bucket{le=\"+Inf\"} ");
            out.push_str(&h.count.to_string());
            out.push('\n');
            out.push_str(h.name);
            out.push_str("_sum ");
            out.push_str(&h.sum.to_string());
            out.push('\n');
            out.push_str(h.name);
            out.push_str("_count ");
            out.push_str(&h.count.to_string());
            out.push('\n');
        }
        for o in &self.outcomes {
            let labels = format!("{{profile=\"{}\",member=\"{}\"}}", o.profile, o.member);
            for (metric, v) in [
                ("msrs_outcome_runs_total", o.runs),
                ("msrs_outcome_wins_total", o.wins),
                ("msrs_outcome_completed_total", o.completed),
                ("msrs_outcome_timed_out_total", o.timed_out),
                ("msrs_outcome_exhausted_total", o.exhausted),
                ("msrs_outcome_invalid_total", o.invalid),
                ("msrs_outcome_nodes_total", o.nodes_total),
            ] {
                out.push_str(metric);
                out.push_str(&labels);
                out.push(' ');
                out.push_str(&v.to_string());
                out.push('\n');
            }
            for (q, v) in [
                ("0.5", o.wall.p50),
                ("0.9", o.wall.p90),
                ("0.99", o.wall.p99),
            ] {
                out.push_str("msrs_outcome_wall_micros{profile=\"");
                out.push_str(o.profile);
                out.push_str("\",member=\"");
                out.push_str(o.member);
                out.push_str("\",quantile=\"");
                out.push_str(q);
                out.push_str("\"} ");
                out.push_str(&v.to_string());
                out.push('\n');
            }
            out.push_str("msrs_outcome_wall_micros_sum");
            out.push_str(&labels);
            out.push(' ');
            out.push_str(&o.wall.sum.to_string());
            out.push('\n');
            out.push_str("msrs_outcome_wall_micros_count");
            out.push_str(&labels);
            out.push(' ');
            out.push_str(&o.wall.count.to_string());
            out.push('\n');
        }
        for (i, v) in self.pool_worker_chunks.iter().enumerate() {
            out.push_str("msrs_pool_worker_chunks_total{worker=\"");
            out.push_str(&i.to_string());
            out.push_str("\"} ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

fn push_json_key(out: &mut String, key: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
}

fn push_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    out.push('{');
    push_json_key(out, "name");
    out.push('"');
    out.push_str(h.name);
    out.push_str("\",");
    for (key, v) in [
        ("count", h.count),
        ("sum", h.sum),
        ("max", h.max),
        ("p50", h.p50),
        ("p90", h.p90),
        ("p99", h.p99),
    ] {
        push_json_key(out, key);
        out.push_str(&v.to_string());
        out.push(',');
    }
    push_json_key(out, "buckets");
    out.push('[');
    for (i, (lo, hi, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&lo.to_string());
        out.push(',');
        out.push_str(&hi.to_string());
        out.push(',');
        out.push_str(&n.to_string());
        out.push(']');
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        // Every power of two opens a new bucket; its predecessor closes one.
        for bit in 1..64u32 {
            let p = 1u64 << bit;
            assert_eq!(Histogram::bucket_index(p), bit as usize + 1);
            assert_eq!(Histogram::bucket_index(p - 1), bit as usize);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        // Buckets tile the whole u64 range with no gaps or overlaps.
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        let mut expected_lo = 1u64;
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} low bound");
            assert!(hi >= lo);
            // Each bound maps back into its own bucket.
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            if i < HISTOGRAM_BUCKETS - 1 {
                expected_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = Histogram::new();
        // 100 samples of 10 (bucket [8,15]) and 1 of 1000 (bucket [512,1023]).
        for _ in 0..100 {
            h.record(10);
        }
        h.record(1000);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 101);
        assert_eq!(snap.sum, 2000);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.p50, 15);
        assert_eq!(snap.p90, 15);
        assert_eq!(snap.p99, 15);
        // All samples in one bucket → p99 is that bucket's ceiling.
        assert_eq!(snap.buckets, vec![(8, 15, 100), (512, 1023, 1)]);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot("t");
        assert_eq!((snap.count, snap.sum, snap.max), (0, 0, 0));
        assert_eq!((snap.p50, snap.p90, snap.p99), (0, 0, 0));
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn outcome_table_clamps_and_accumulates() {
        let t = OutcomeTable::new();
        t.record(0, 1, OutcomeStatus::Completed, true, 5, 100);
        t.record(0, 1, OutcomeStatus::TimedOut, false, 7, 200);
        t.record(99, 99, OutcomeStatus::Invalid, false, 0, 1);
        assert_eq!(t.runs(0, 1), 2);
        assert_eq!(t.runs(MAX_OUTCOME_PROFILES - 1, MAX_OUTCOME_MEMBERS - 1), 1);
        let rows = t.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].runs, 2);
        assert_eq!(rows[0].wins, 1);
        assert_eq!(rows[0].completed, 1);
        assert_eq!(rows[0].timed_out, 1);
        assert_eq!(rows[0].nodes_total, 12);
        assert_eq!(rows[0].wall.count, 2);
    }

    #[test]
    fn gauge_goes_up_and_down() {
        let g = Gauge::new();
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), -2);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn snapshot_lookup_by_name() {
        let r = Registry::new();
        r.cache_hits_total.add(3);
        r.cache_entries.set(2);
        let s = r.snapshot();
        assert_eq!(s.counter("msrs_cache_hits_total"), 3);
        assert_eq!(s.gauge("msrs_cache_entries"), 2);
        assert_eq!(s.counter("no_such_counter"), 0);
        assert!(s.pool_worker_chunks.is_empty(), "local registry: no pool");
    }

    #[test]
    fn json_and_prometheus_render_nonempty() {
        let r = Registry::new();
        r.requests_total.add(2);
        r.stage(Stage::Decode).record(1500);
        r.outcomes
            .record(1, 0, OutcomeStatus::Completed, true, 9, 42);
        let s = r.snapshot();
        let json = s.to_json_string();
        assert!(json.starts_with("{\"telemetry\":\"msrs\""));
        assert!(json.contains("\"msrs_requests_total\":2"));
        assert!(json.contains("msrs_stage_decode_nanos"));
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE msrs_requests_total counter\nmsrs_requests_total 2\n"));
        assert!(prom.contains("msrs_stage_decode_nanos_bucket{le=\"+Inf\"} 1\n"));
        assert!(prom.contains("msrs_outcome_runs_total{"));
    }
}
