//! # msrs — Scheduling with Many Shared Resources
//!
//! A production-quality Rust implementation of
//! *"Scheduling with Many Shared Resources"* (Deppert, Jansen, Maack, Pukrop
//! & Rau, IPDPS/IPPS 2023; arXiv:2210.01523): makespan minimization on
//! identical machines where every job holds exactly one shared resource and
//! jobs of the same resource class may never run concurrently.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — problem model, schedules, exact validation, lower bounds,
//!   block-based schedule builder, ASCII Gantt rendering;
//! * [`gen`] — seeded workload generators (uniform/Zipf/satellite-downlink/
//!   photolithography/adversarial/boundary families, exhaustive enumerator);
//! * [`approx`] — the paper's 5/3- and 3/2-approximations plus the
//!   `2m/(m+1)`-style prior-work baselines;
//! * [`exact`] — an exact branch-and-bound solver for small instances;
//! * [`flow`] — Dinic max-flow and the Lemma 18 placeholder network (Fig 5);
//! * [`nfold`] — generalized N-fold integer programming machinery (§4.2);
//! * [`ptas`] — the EPTAS of Theorem 14, constant-`m` and
//!   resource-augmentation variants;
//! * [`multires`] — the multi-resource extension, DPLL SAT substrate, and
//!   the Theorem 23 inapproximability reduction;
//! * [`engine`] — the solver-portfolio orchestrator: instance
//!   classification, parallel portfolio/batch execution with deterministic
//!   reports, certified best-of selection, JSON-lines corpus I/O, and the
//!   `msrs` CLI (`gen` / `solve` / `batch` / `bench`).
//!
//! ## Quickstart
//!
//! ```
//! use msrs::prelude::*;
//!
//! // 2 machines; three resource classes with their job processing times.
//! let inst = Instance::from_classes(2, &[vec![4, 3], vec![5, 2], vec![6]]).unwrap();
//! let result = three_halves(&inst);
//! assert!(validate(&inst, &result.schedule).is_ok());
//! assert!(result.schedule.makespan(&inst) as f64 <= 1.5 * result.lower_bound as f64);
//! ```
//!
//! Or let the engine pick and race the right solvers:
//!
//! ```
//! use msrs::prelude::*;
//!
//! let inst = Instance::from_classes(2, &[vec![4, 3], vec![5, 2], vec![6]]).unwrap();
//! let report = Engine::default().solve_instance(&inst);
//! assert!(validate(&inst, &report.schedule).is_ok());
//! assert!(report.makespan <= report.certified_horizon);
//! assert!(report.proven_optimal); // tiny instance: the exact member finished
//! ```
//!
//! See README.md for the architecture overview, DESIGN.md for the full
//! system inventory and per-experiment index, and EXPERIMENTS.md for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]

pub use msrs_approx as approx;
pub use msrs_core as core;
pub use msrs_engine as engine;
pub use msrs_exact as exact;
pub use msrs_flow as flow;
pub use msrs_gen as gen;
pub use msrs_multires as multires;
pub use msrs_nfold as nfold;
pub use msrs_ptas as ptas;

/// The most common items in one import.
pub mod prelude {
    pub use msrs_approx::baselines::{hebrard_greedy, list_scheduler, merged_lpt};
    pub use msrs_approx::{five_thirds, three_halves, ApproxResult};
    pub use msrs_core::bounds::{lower_bound, lower_bounds, LowerBounds};
    pub use msrs_core::render::render_gantt;
    pub use msrs_core::{validate, Instance, Job, Schedule, Time};
    pub use msrs_engine::{Engine, EngineConfig, SolveReport, SolveRequest, SolverKind};
    pub use msrs_exact::{optimal, SolveLimits};
    pub use msrs_ptas::{eptas_augmented, eptas_fixed_m, EptasConfig};
}
