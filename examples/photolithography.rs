//! The semiconductor photolithography scenario (Janssen et al.): reticles
//! are the shared resources (one copy each), steppers are the machines.
//! Compares all algorithms and shows per-machine utilization.
//!
//! ```text
//! cargo run --release --example photolithography
//! ```

use msrs::prelude::*;

fn main() {
    let steppers = 5;
    let reticles = 18;
    let lots = 9;
    let inst = msrs::gen::photolithography(42, steppers, reticles, lots);

    let t = lower_bound(&inst);
    println!(
        "fab floor: {steppers} steppers, {reticles} reticles, {} lots, T = {t}\n",
        inst.num_jobs()
    );

    let runs: Vec<(&str, ApproxResult)> = vec![
        ("Algorithm_3/2", three_halves(&inst)),
        ("Algorithm_5/3", five_thirds(&inst)),
        ("merged-LPT", merged_lpt(&inst)),
        ("hebrard-greedy", hebrard_greedy(&inst)),
        ("list-LPT", list_scheduler(&inst)),
    ];
    println!(
        "{:<16} {:>10} {:>8} {:>14}",
        "algorithm", "makespan", "ratio", "idle time"
    );
    for (name, r) in &runs {
        validate(&inst, &r.schedule).expect("valid");
        let cmax = r.schedule.makespan(&inst);
        let idle = steppers as u64 * cmax - inst.total_load();
        println!(
            "{:<16} {:>10} {:>8.3} {:>14}",
            name,
            cmax,
            cmax as f64 / t as f64,
            idle
        );
    }

    let best = runs
        .iter()
        .min_by_key(|(_, r)| r.schedule.makespan(&inst))
        .expect("non-empty");
    println!(
        "\nbest plan: {} (makespan {})",
        best.0,
        best.1.schedule.makespan(&inst)
    );
    for q in 0..steppers {
        let load = best.1.schedule.machine_load(&inst, q);
        let pct = 100.0 * load as f64 / best.1.schedule.makespan(&inst) as f64;
        println!("  stepper {q}: load {load} ({pct:.1}% busy)");
    }
}
