//! The Earth-observation scenario that motivated MSRS in Hebrard et al.:
//! satellites are the shared resources (a satellite can downlink to only one
//! ground station at a time), ground stations are the machines, and each
//! satellite holds a burst of download jobs.
//!
//! ```text
//! cargo run --release --example satellite_downlink
//! ```

use msrs::prelude::*;

fn main() {
    let stations = 4;
    let satellites = 14;
    let burst = 12;

    println!("downlink plan: {satellites} satellites, {stations} ground stations\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "seed", "T (bound)", "3/2", "5/3", "merged-LPT"
    );
    let mut totals = [0u64; 3];
    for seed in 0..10 {
        let inst = msrs::gen::satellite(seed, stations, satellites, burst);
        let t = lower_bound(&inst);
        let r32 = three_halves(&inst);
        let r53 = five_thirds(&inst);
        let lpt = merged_lpt(&inst);
        for r in [&r32, &r53, &lpt] {
            validate(&inst, &r.schedule).expect("valid");
        }
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            seed,
            t,
            r32.schedule.makespan(&inst),
            r53.schedule.makespan(&inst),
            lpt.schedule.makespan(&inst)
        );
        totals[0] += r32.schedule.makespan(&inst);
        totals[1] += r53.schedule.makespan(&inst);
        totals[2] += lpt.schedule.makespan(&inst);
    }
    println!("\ntotal downlink makespan over 10 plans:");
    println!("  Algorithm_3/2: {}", totals[0]);
    println!("  Algorithm_5/3: {}", totals[1]);
    println!("  merged-LPT   : {}", totals[2]);

    // Show one plan in detail.
    let inst = msrs::gen::satellite(3, stations, satellites, burst);
    let r = three_halves(&inst);
    println!(
        "\nplan for seed 3 (makespan {}):",
        r.schedule.makespan(&inst)
    );
    println!("{}", render_gantt(&inst, &r.schedule, 78));
}
