//! The approximation schemes of Theorem 14 in action: quality vs ε for the
//! constant-m EPTAS and the resource-augmentation EPTAS, against the exact
//! optimum.
//!
//! ```text
//! cargo run --release --example ptas_tuning
//! ```

use msrs::prelude::*;

fn main() {
    let inst = Instance::from_classes(
        3,
        &[
            vec![100],
            vec![100],
            vec![100],
            vec![50, 50],
            vec![40, 30, 30],
        ],
    )
    .expect("well-formed");
    let opt = optimal(&inst, SolveLimits::default()).expect("small instance");
    println!(
        "instance: m = {}, n = {}, classes = {}, OPT = {}\n",
        inst.machines(),
        inst.num_jobs(),
        inst.num_nonempty_classes(),
        opt.makespan
    );

    println!(
        "{:>5} {:>12} {:>9} {:>12} {:>9} {:>9}",
        "eps", "fixed-m", "ratio", "augmented", "ratio", "machines"
    );
    for k in [2u64, 3, 4, 6, 8] {
        let cfg = EptasConfig {
            eps_k: k,
            node_budget: 2_000_000,
        };
        let fixed = eptas_fixed_m(&inst, cfg);
        let aug = eptas_augmented(&inst, cfg);
        validate(&fixed.instance, &fixed.schedule).expect("valid");
        validate(&aug.instance, &aug.schedule).expect("valid");
        println!(
            "{:>5} {:>12} {:>9.3} {:>12} {:>9.3} {:>6}/{}",
            format!("1/{k}"),
            fixed.makespan(),
            fixed.makespan() as f64 / opt.makespan as f64,
            aug.makespan(),
            aug.makespan() as f64 / opt.makespan as f64,
            aug.schedule.machines_used(&aug.instance),
            aug.instance.machines(),
        );
    }
    println!(
        "\n(3/2-approximation for comparison: {})",
        three_halves(&inst).schedule.makespan(&inst)
    );
}
