//! Quickstart: build an instance, run both headline algorithms, validate,
//! and render the Gantt charts.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use msrs::prelude::*;

fn main() {
    // Three machines; five resource classes. Class 0 is a heavy class led by
    // a big job; classes 3-4 are bags of small jobs.
    let inst = Instance::from_classes(
        3,
        &[
            vec![40, 12, 8],
            vec![35, 20],
            vec![30, 15, 10],
            vec![9, 9, 9, 9],
            vec![7, 7, 7],
        ],
    )
    .expect("well-formed instance");

    let bounds = lower_bounds(&inst);
    println!(
        "lower bounds: area={} class={} two-jobs={} ⇒ T={}",
        bounds.avg_load,
        bounds.max_class,
        bounds.two_jobs,
        bounds.combined()
    );

    for (name, result) in [
        ("Algorithm_5/3 (Theorem 2)", five_thirds(&inst)),
        ("Algorithm_3/2 (Theorem 7)", three_halves(&inst)),
        ("merged-LPT baseline", merged_lpt(&inst)),
    ] {
        validate(&inst, &result.schedule).expect("algorithms emit valid schedules");
        println!(
            "\n{name}: makespan {} (T = {}, ratio vs bound {:.3})",
            result.schedule.makespan(&inst),
            result.lower_bound,
            result.ratio_vs_bound(&inst)
        );
        println!("{}", render_gantt(&inst, &result.schedule, 70));
    }

    // Ground truth for instances this small:
    let exact = optimal(&inst, SolveLimits::default()).expect("small instance");
    println!(
        "exact optimum: {} ({} B&B nodes)",
        exact.makespan, exact.nodes
    );
}
