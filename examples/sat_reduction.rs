//! The §5 inapproximability gadget end-to-end: a Monotone 3-SAT-(2,2)
//! formula becomes a multi-resource scheduling instance whose optimal
//! makespan separates 4 (satisfiable) from 5.
//!
//! Also demonstrates the reproduction erratum: the gadget exactly as printed
//! is over machine capacity at makespan 4 (see DESIGN.md).
//!
//! ```text
//! cargo run --release --example sat_reduction
//! ```

use msrs::multires::model::MultiMakespan;
use msrs::multires::{dpll, validate_multi, Fidelity, Monotone3Sat22, Reduction};

fn main() {
    let formula = Monotone3Sat22::random(7, 9);
    println!(
        "formula: |X| = {}, |C| = {} ({} positive clauses)",
        formula.num_vars(),
        formula.num_clauses(),
        formula.num_positive
    );

    let text = Reduction::build(formula.clone(), Fidelity::Text);
    println!(
        "\ntext-faithful gadget: {} jobs, {} machines, {} resources, ≤{} resources/job",
        text.instance.num_jobs(),
        text.instance.machines(),
        text.instance.num_resources(),
        text.instance.max_resources_per_job()
    );
    println!(
        "erratum certificate: load {} > 4·machines = {} (deficit {})",
        text.instance.total_load(),
        4 * text.instance.machines(),
        text.capacity_deficit()
    );

    let red = Reduction::build(formula.clone(), Fidelity::Repaired);
    let s5 = red.schedule_makespan5();
    validate_multi(&red.instance, &s5).expect("5-schedule valid");
    println!(
        "\nrepaired gadget: always-feasible schedule with makespan {}",
        s5.makespan_multi(&red.instance)
    );

    match dpll(&formula.cnf) {
        Some(asg) => {
            let s4 = red.schedule_makespan4(&asg).expect("satisfying assignment");
            validate_multi(&red.instance, &s4).expect("4-schedule valid");
            println!(
                "formula is SATISFIABLE ⇒ constructed schedule with makespan {}",
                s4.makespan_multi(&red.instance)
            );
            let roundtrip = red.extract_assignment(&s4);
            assert_eq!(roundtrip, asg);
            println!("assignment extracted back from the schedule: {roundtrip:?}");
        }
        None => {
            println!("formula is UNSATISFIABLE ⇒ best constructible makespan is 5");
        }
    }
    println!("\n⇒ a (5/4 − ε)-approximation would decide Monotone 3-SAT-(2,2) (Theorem 23)");
}
