//! Operational inspection: serialize an instance, schedule it, and report
//! the statistics a production user would monitor (utilization, idle time,
//! resource stretch) — built on `msrs_core::{io, stats}`.
//!
//! ```text
//! cargo run --release --example inspect
//! ```

use msrs::core::io::{read_instance, write_instance, write_schedule};
use msrs::core::stats::schedule_stats;
use msrs::prelude::*;

fn main() {
    let inst = msrs::gen::photolithography(11, 4, 12, 7);

    // The text format round-trips exactly — handy for sharing instances.
    let text = write_instance(&inst);
    let inst = read_instance(&text).expect("round trip");
    println!("instance ({} bytes serialized):", text.len());
    println!("{}", text.lines().take(6).collect::<Vec<_>>().join("\n"));
    println!("... ({} classes total)\n", inst.num_nonempty_classes());

    for (name, r) in [
        ("Algorithm_3/2", three_halves(&inst)),
        ("merged-LPT", merged_lpt(&inst)),
    ] {
        validate(&inst, &r.schedule).expect("valid");
        let st = schedule_stats(&inst, &r.schedule);
        println!("{name}:");
        println!("  makespan          {}", st.makespan);
        println!("  mean utilization  {:.1}%", 100.0 * st.mean_utilization);
        println!("  min utilization   {:.1}%", 100.0 * st.min_utilization);
        println!("  total idle        {}", st.total_idle);
        println!("  max class stretch {:.2}x", st.max_class_stretch());
        println!();
    }

    // Schedules serialize too.
    let r = three_halves(&inst);
    let sched_text = write_schedule(&r.schedule);
    println!(
        "schedule serialized to {} bytes; first lines:\n{}",
        sched_text.len(),
        sched_text.lines().take(4).collect::<Vec<_>>().join("\n")
    );
}
